(* Realm snapshotting: build the builtin global environment once, then
   stamp out per-execution realms by structurally copying the template's
   object graph instead of re-running [Builtins.install].

   Profiling the campaign (BENCH_campaign.json, PR 3) shows that with
   execution sharing on, the dominant per-execution cost is not
   interpretation at all — typical generated programs burn well under a
   hundred fuel — but realm construction: several hundred objects and
   properties rebuilt from scratch for every run. A structural copy of a
   finished realm skips the closure allocation, the prototype-registry
   lookups, and the quadratic insertion-ordered property appends of a
   fresh install, and is several times cheaper.

   Soundness rests on three audited invariants of [Builtins.install]:

   - it never consults a quirk checkpoint, so the template is identical
     for every testbed and [ctx.touched]/[ctx.fired] start empty either
     way (verified by the resolve-parity test suite);
   - it burns no fuel, so [r_fuel_used] is unaffected;
   - every builtin implementation closure is realm-agnostic: it receives
     the calling [ctx] as an argument and resolves prototypes through
     [proto_of ctx], never by capturing an installing-realm object. The
     [Native] callables can therefore be shared between the template and
     its copies. ([Js_closure]/[Compiled] callables capture scopes and
     cannot appear in a template; [clone] rejects them.)

   Object ids are allocated fresh for each copy, in traversal rather than
   install order. This is unobservable: [oid] is an identity tag that no
   interpreter or builtin code ever reads, and the campaign executor
   already interleaves allocations arbitrarily across domains.

   The template is built lazily under a mutex (campaign worker domains
   may race to the first execution) and is immutable afterwards, so
   concurrent [clone]s may read it freely. *)

open Value

type t = {
  rt_global : obj;  (** the template's finished global object *)
  rt_protos : (string * obj) list;  (** its prototype registry *)
  rt_oid_base : int;
      (** template objects carry oids in [rt_oid_base, rt_oid_base +
          rt_oid_span); the clone memo is a plain array indexed by
          [oid - rt_oid_base], which profiles several times faster than a
          hash table at realm size *)
  rt_oid_span : int;
}

(* A throwaway context for running the one-time install. The hooks are
   never invoked during installation (nothing calls user code), and the
   quirk set is irrelevant because installation consults no checkpoints. *)
let build () : t =
  let oid0 = Atomic.get obj_counter in
  let global = make_obj ~oclass:"Object" () in
  let global_scope =
    { bindings = Hashtbl.create 16; parent = None; frozen_names = [] }
  in
  let ctx : ctx =
    {
      global;
      global_scope;
      quirks = Quirk.Set.empty;
      parse_opts = Jsparse.Parser.default_options;
      fuel = max_int;
      fuel_cap = max_int;
      out = Buffer.create 16;
      fired = Quirk.Set.empty;
      touched = Quirk.Set.empty;
      call_hook = (fun _ _ _ _ -> Undefined);
      eval_hook = (fun _ _ _ _ -> Undefined);
      coverage = None;
      loop_trip = 0;
      strconcat_drop_armed = true;
      protos = [];
      depth = 0;
      cur_this = Undefined;
      slotted = false;
      specials_shadowed = false;
    }
  in
  Builtins.install ctx;
  let oid1 = Atomic.get obj_counter in
  (* the span may include oids allocated concurrently by other domains;
     that only costs unused memo slots — the clone walk can only ever
     reach template objects *)
  {
    rt_global = ctx.global;
    rt_protos = ctx.protos;
    rt_oid_base = oid0 + 1;
    rt_oid_span = oid1 - oid0 + 1;
  }

let template_lock = Mutex.create ()
let template_cell : t option ref = ref None

let template () : t =
  Mutex.lock template_lock;
  let t =
    match !template_cell with
    | Some t -> t
    | None ->
        let t = build () in
        template_cell := Some t;
        t
  in
  Mutex.unlock template_lock;
  t

(* Structural copy. The memo (an array indexed by template oid, see
   [rt_oid_base]) keeps shared structure shared in the copy — every
   function's prototype link back into the registry, the array generics
   aliased onto %TypedArray%.prototype, ... — and terminates cycles
   (constructor <-> prototype). The copy is registered in the memo before
   its fields are filled in. *)
type memo = { mm_base : int; mm_slots : obj option array }

let rec clone_value (memo : memo) (v : value) : value =
  match v with Obj o -> Obj (clone_obj memo o) | v -> v

and clone_prop (memo : memo) (p : prop) : prop =
  {
    p with
    v = clone_value memo p.v;
    getter = Option.map (clone_value memo) p.getter;
  }

and clone_obj (memo : memo) (o : obj) : obj =
  match memo.mm_slots.(o.oid - memo.mm_base) with
  | Some o' -> o'
  | None ->
      let o' =
        {
          o with
          oid = Atomic.fetch_and_add obj_counter 1 + 1;
          props = [];
          proto = Null;
        }
      in
      memo.mm_slots.(o.oid - memo.mm_base) <- Some o';
      o'.proto <- clone_value memo o.proto;
      o'.props <- List.map (fun (k, p) -> (k, clone_prop memo p)) o.props;
      (o'.call <-
         (match o.call with
         | (None | Some (Native _)) as c -> c
         | Some (Js_closure _ | Compiled _) ->
             invalid_arg "Realm.clone: template contains a non-native closure"));
      o'.arr <-
        Option.map
          (fun a -> { a with elems = Array.map (clone_value memo) a.elems })
          o.arr;
      o'.prim <- Option.map (clone_value memo) o.prim;
      (* regex_data is immutable (the compiled program and its source);
         lastIndex lives in props *)
      o'.regex <- o.regex;
      o'.dataview <- Option.map Bytes.copy o.dataview;
      o'

(* One fresh realm: the copied global plus its prototype registry, mapped
   through the same memo so registry entries are the very objects hanging
   off the copied global. *)
let clone (t : t) : obj * (string * obj) list =
  let memo =
    { mm_base = t.rt_oid_base; mm_slots = Array.make t.rt_oid_span None }
  in
  let g = clone_obj memo t.rt_global in
  let protos = List.map (fun (n, o) -> (n, clone_obj memo o)) t.rt_protos in
  (g, protos)

(* Convenience used by [Run.make_ctx]. *)
let fresh () : obj * (string * obj) list = clone (template ())
