(* Realm snapshotting: build the builtin global environment once, then
   stamp out per-execution realms by structurally copying the template's
   object graph instead of re-running [Builtins.install].

   Profiling the campaign (BENCH_campaign.json, PR 3) shows that with
   execution sharing on, the dominant per-execution cost is not
   interpretation at all — typical generated programs burn well under a
   hundred fuel — but realm construction: several hundred objects and
   properties rebuilt from scratch for every run. A structural copy of a
   finished realm skips the closure allocation, the prototype-registry
   lookups, and the quadratic insertion-ordered property appends of a
   fresh install, and is several times cheaper.

   Soundness rests on three audited invariants of [Builtins.install]:

   - it never consults a quirk checkpoint, so the template is identical
     for every testbed and [ctx.touched]/[ctx.fired] start empty either
     way (verified by the resolve-parity test suite);
   - it burns no fuel, so [r_fuel_used] is unaffected;
   - every builtin implementation closure is realm-agnostic: it receives
     the calling [ctx] as an argument and resolves prototypes through
     [proto_of ctx], never by capturing an installing-realm object. The
     [Native] callables can therefore be shared between the template and
     its copies. ([Js_closure]/[Compiled] callables capture scopes and
     cannot appear in a template; [clone] rejects them.)

   Object ids are allocated fresh for each copy, in traversal rather than
   install order. This is unobservable: [oid] is an identity tag that no
   interpreter or builtin code ever reads, and the campaign executor
   already interleaves allocations arbitrarily across domains.

   The template is built lazily under a mutex (campaign worker domains
   may race to the first execution) and is immutable afterwards, so
   concurrent [clone]s may read it freely. *)

open Value

type t = {
  rt_global : obj;  (** the template's finished global object *)
  rt_protos : (string * obj) list;  (** its prototype registry *)
  rt_oid_base : int;
      (** template objects carry oids in [rt_oid_base, rt_oid_base +
          rt_oid_span); the clone memo is a plain array indexed by
          [oid - rt_oid_base], which profiles several times faster than a
          hash table at realm size *)
  rt_oid_span : int;
}

(* A throwaway context for running the one-time install. The hooks are
   never invoked during installation (nothing calls user code), and the
   quirk set is irrelevant because installation consults no checkpoints. *)
let build () : t =
  let oid0 = Atomic.get obj_counter in
  let global = make_obj ~oclass:"Object" () in
  let global_scope =
    { bindings = Hashtbl.create 16; parent = None; frozen_names = [] }
  in
  let ctx : ctx =
    {
      global;
      global_scope;
      quirks = Quirk.Set.empty;
      parse_opts = Jsparse.Parser.default_options;
      fuel = max_int;
      fuel_cap = max_int;
      out = Buffer.create 16;
      q_lo = 0;
      q_hi = 0;
      f_lo = 0;
      f_hi = 0;
      t_lo = 0;
      t_hi = 0;
      call_hook = (fun _ _ _ _ -> Undefined);
      eval_hook = (fun _ _ _ _ -> Undefined);
      coverage = None;
      loop_trip = 0;
      strconcat_drop_armed = true;
      protos = [];
      depth = 0;
      cur_this = Undefined;
      slotted = false;
      specials_shadowed = false;
      ic_gen = 0;
      ihits = 0;
    }
  in
  Builtins.install ctx;
  let oid1 = Atomic.get obj_counter in
  (* the span may include oids allocated concurrently by other domains;
     that only costs unused memo slots — the clone walk can only ever
     reach template objects *)
  {
    rt_global = ctx.global;
    rt_protos = ctx.protos;
    rt_oid_base = oid0 + 1;
    rt_oid_span = oid1 - oid0 + 1;
  }

(* Mark every object reachable from the template as shared (cow = 1) so
   the [Value.barrier] write barrier journals a pre-image before its first
   mutation. The memo is the same span-indexed array the clone uses. *)
let mark_shared (t : t) : unit =
  let seen = Array.make t.rt_oid_span false in
  let rec mark_value v = match v with Obj o -> mark_obj o | _ -> ()
  and mark_obj (o : obj) =
    let i = o.oid - t.rt_oid_base in
    if not seen.(i) then begin
      seen.(i) <- true;
      o.cow <- 1;
      mark_value o.proto;
      List.iter
        (fun (_, p) ->
          mark_value p.v;
          Option.iter mark_value p.getter)
        o.props;
      Option.iter (fun a -> Array.iter mark_value a.elems) o.arr;
      Option.iter mark_value o.prim
    end
  in
  mark_obj t.rt_global;
  List.iter (fun (_, o) -> mark_obj o) t.rt_protos

(* One template per domain. Executions on a domain are sequential, so the
   copy-on-write journal (domain-local, see [Value.cow_journal]) never has
   two writers; nothing template-related is ever shared across domains.
   Building per domain costs one install (~147µs) amortised over every
   execution the domain ever runs. *)
let template_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let template () : t =
  let cell = Domain.DLS.get template_key in
  match !cell with
  | Some t -> t
  | None ->
      let t = build () in
      mark_shared t;
      cell := Some t;
      t

(* --- copy-on-write acquisition ---
   [acquire] hands out the domain's template *itself*; the write barrier
   journals pre-images of any template object the execution mutates, and
   [release] rolls the journal back so the next acquisition sees a
   pristine realm. [release] is idempotent (rolling back an empty journal
   is a no-op), so callers may release on every exit path. *)

let acquire () : obj * (string * obj) list =
  let t = template () in
  (t.rt_global, t.rt_protos)

let release () : unit = Value.cow_rollback ()

(* Audit mode: structurally compare the domain's (post-rollback) template
   against a freshly installed realm — any surviving mutation means a
   write-barrier gap, i.e. cross-execution leakage. Oids, cow state and
   version stamps are identity bookkeeping, not observable state, and are
   ignored. *)
let check_pristine () : (unit, string) result =
  let t = template () in
  let r = build () in
  let seen : (int, int) Hashtbl.t = Hashtbl.create 512 in
  let fail path what = Error (Printf.sprintf "%s: %s differs" path what) in
  let rec cmp_value path (a : value) (b : value) =
    match (a, b) with
    | Undefined, Undefined | Null, Null -> Ok ()
    | Bool x, Bool y when x = y -> Ok ()
    | Num x, Num y when x = y || (Float.is_nan x && Float.is_nan y) -> Ok ()
    | Str x, Str y when x = y -> Ok ()
    | Obj x, Obj y -> cmp_obj path x y
    | _ -> fail path "value"
  and cmp_obj path (a : obj) (b : obj) =
    match Hashtbl.find_opt seen a.oid with
    | Some oid when oid = b.oid -> Ok ()
    | Some _ -> fail path "object identity"
    | None ->
        Hashtbl.add seen a.oid b.oid;
        let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
        let* () = if a.oclass = b.oclass then Ok () else fail path "class" in
        let* () =
          if a.extensible = b.extensible then Ok () else fail path "extensible"
        in
        let* () =
          match (a.call, b.call) with
          | None, None -> Ok ()
          | Some (Native (n1, a1, _)), Some (Native (n2, a2, _))
            when n1 = n2 && a1 = a2 ->
              Ok ()
          | _ -> fail path "callable"
        in
        let* () =
          if List.map fst a.props = List.map fst b.props then Ok ()
          else fail path "property layout"
        in
        let* () =
          List.fold_left2
            (fun acc (k, pa) (_, pb) ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  let p = path ^ "." ^ k in
                  if
                    pa.writable = pb.writable
                    && pa.enumerable = pb.enumerable
                    && pa.configurable = pb.configurable
                  then
                    let g =
                      match (pa.getter, pb.getter) with
                      | None, None -> Ok ()
                      | Some x, Some y -> cmp_value (p ^ "[get]") x y
                      | _ -> fail p "getter"
                    in
                    (match g with Ok () -> cmp_value p pa.v pb.v | e -> e)
                  else fail p "attributes")
            (Ok ()) a.props b.props
        in
        let* () =
          match (a.arr, b.arr) with
          | None, None -> Ok ()
          | Some x, Some y
            when x.ty = y.ty && x.alen = y.alen
                 && x.length_writable = y.length_writable ->
              let r = ref (Ok ()) in
              for i = 0 to x.alen - 1 do
                match !r with
                | Error _ -> ()
                | Ok () ->
                    r :=
                      cmp_value
                        (Printf.sprintf "%s[%d]" path i)
                        x.elems.(i) y.elems.(i)
              done;
              !r
          | _ -> fail path "array storage"
        in
        let* () =
          match (a.prim, b.prim) with
          | None, None -> Ok ()
          | Some x, Some y -> cmp_value (path ^ "[prim]") x y
          | _ -> fail path "primitive"
        in
        let* () =
          match (a.regex, b.regex) with
          | None, None -> Ok ()
          | Some x, Some y
            when x.rx_source = y.rx_source && x.rx_flags = y.rx_flags ->
              Ok ()
          | _ -> fail path "regex"
        in
        let* () =
          match (a.dataview, b.dataview) with
          | None, None -> Ok ()
          | Some x, Some y when Bytes.equal x y -> Ok ()
          | _ -> fail path "dataview"
        in
        cmp_value (path ^ "[proto]") a.proto b.proto
  in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () = cmp_obj "global" t.rt_global r.rt_global in
  if List.map fst t.rt_protos <> List.map fst r.rt_protos then
    Error "prototype registry differs"
  else
    List.fold_left2
      (fun acc (n, a) (_, b) ->
        match acc with Error _ -> acc | Ok () -> cmp_obj n a b)
      (Ok ()) t.rt_protos r.rt_protos

(* Structural copy. The memo (an array indexed by template oid, see
   [rt_oid_base]) keeps shared structure shared in the copy — every
   function's prototype link back into the registry, the array generics
   aliased onto %TypedArray%.prototype, ... — and terminates cycles
   (constructor <-> prototype). The copy is registered in the memo before
   its fields are filled in. *)
type memo = { mm_base : int; mm_slots : obj option array }

let rec clone_value (memo : memo) (v : value) : value =
  match v with Obj o -> Obj (clone_obj memo o) | v -> v

and clone_prop (memo : memo) (p : prop) : prop =
  {
    p with
    v = clone_value memo p.v;
    getter = Option.map (clone_value memo) p.getter;
  }

and clone_obj (memo : memo) (o : obj) : obj =
  match memo.mm_slots.(o.oid - memo.mm_base) with
  | Some o' -> o'
  | None ->
      let o' =
        {
          o with
          oid = Atomic.fetch_and_add obj_counter 1 + 1;
          props = [];
          proto = Null;
          cow = 0;
          version = 0;
        }
      in
      memo.mm_slots.(o.oid - memo.mm_base) <- Some o';
      o'.proto <- clone_value memo o.proto;
      o'.props <- List.map (fun (k, p) -> (k, clone_prop memo p)) o.props;
      (o'.call <-
         (match o.call with
         | (None | Some (Native _)) as c -> c
         | Some (Js_closure _ | Compiled _) ->
             invalid_arg "Realm.clone: template contains a non-native closure"));
      o'.arr <-
        Option.map
          (fun a -> { a with elems = Array.map (clone_value memo) a.elems })
          o.arr;
      o'.prim <- Option.map (clone_value memo) o.prim;
      (* regex_data is immutable (the compiled program and its source);
         lastIndex lives in props *)
      o'.regex <- o.regex;
      o'.dataview <- Option.map Bytes.copy o.dataview;
      o'

(* One fresh realm: the copied global plus its prototype registry, mapped
   through the same memo so registry entries are the very objects hanging
   off the copied global. *)
let clone (t : t) : obj * (string * obj) list =
  let memo =
    { mm_base = t.rt_oid_base; mm_slots = Array.make t.rt_oid_span None }
  in
  let g = clone_obj memo t.rt_global in
  let protos = List.map (fun (n, o) -> (n, clone_obj memo o)) t.rt_protos in
  (g, protos)

(* Convenience used by [Run.make_ctx]. *)
let fresh () : obj * (string * obj) list = clone (template ())
