(* Static binding resolution for the closure compiler ([Compile]).

   The tree-walker resolves every identifier by walking a chain of
   [Hashtbl]-backed scopes ([Value.scope]). This pass assigns each binding a
   static (depth, slot) coordinate instead, mirroring the interpreter's
   *runtime* scoping discipline exactly — which is not spec scoping:

   - [var] and function declarations hoist to the enclosing function (or
     program) scope and exist from frame construction ("fixed" slots);
   - [let]/[const] bindings only exist once their declaration statement has
     executed (the tree-walker has no temporal dead zone: a reference before
     the declaration resolves to an *outer* binding), so lexical slots are
     "conditional": they hold an absent sentinel until declared, and every
     reference compiles to a chain of candidate slots that falls through
     absent ones;
   - non-scope-creating statements (if arms, while/do-while bodies, labels)
     pass the current scope through, so a [let] nested in an unbraced [if]
     arm binds in the *enclosing* block — [lexical_names] reproduces that
     reachability rule.

   The pass leans on the same machinery the PR 1 analysis layer uses:
   [Interp.hoist_stmt] for var/function hoisting (shared with the
   tree-walker, so hoisting parity is by construction) and
   [Analysis.Scope.resolve] for the program-level facts (free variables)
   that decide whether a program may reach [eval] and must therefore stay
   on the tree-walking path. *)

module Ast = Jsast.Ast

(* --- levels: compile-time images of runtime frames --- *)

type entry = {
  en_slot : int;
  mutable en_fixed : bool;
      (** installed at frame construction, never absent at runtime *)
  mutable en_frozen : bool;  (** named-funcexpr self binding *)
}

type level = {
  lv_tbl : (string, entry) Hashtbl.t;
  mutable lv_rev_names : string list;
  mutable lv_count : int;
}

let new_level () : level =
  { lv_tbl = Hashtbl.create 8; lv_rev_names = []; lv_count = 0 }

(* Declare [name] in [lv]; redeclaration merges into the existing slot (the
   runtime analogue: one Hashtbl key per name per scope). A name fixed by
   any declaration stays fixed. *)
let declare (lv : level) (name : string) ~(fixed : bool) ~(frozen : bool) : int
    =
  match Hashtbl.find_opt lv.lv_tbl name with
  | Some e ->
      e.en_fixed <- e.en_fixed || fixed;
      e.en_frozen <- e.en_frozen || frozen;
      e.en_slot
  | None ->
      let slot = lv.lv_count in
      lv.lv_count <- slot + 1;
      Hashtbl.replace lv.lv_tbl name
        { en_slot = slot; en_fixed = fixed; en_frozen = frozen };
      lv.lv_rev_names <- name :: lv.lv_rev_names;
      slot

let size (lv : level) : int = lv.lv_count
let names (lv : level) : string array = Array.of_list (List.rev lv.lv_rev_names)

let frozen_names (lv : level) : string list =
  Hashtbl.fold (fun n e acc -> if e.en_frozen then n :: acc else acc) lv.lv_tbl []

let find (lv : level) (name : string) : entry option =
  Hashtbl.find_opt lv.lv_tbl name

let slot_of (lv : level) (name : string) : int option =
  Option.map (fun e -> e.en_slot) (find lv name)

(* --- access resolution over a static environment --- *)

type target = { tg_depth : int; tg_slot : int; tg_frozen : bool }

type access = {
  ac_candidates : (int * int) list;
      (** conditional (lexical) slots, innermost first: checked in order,
          falling through slots still holding the absent sentinel *)
  ac_terminal : target option;
      (** first fixed slot on the chain — the walk can never pass it *)
}

let resolve_access (env : level list) (name : string) : access =
  let rec go depth levels acc =
    match levels with
    | [] -> { ac_candidates = List.rev acc; ac_terminal = None }
    | lv :: rest -> (
        match find lv name with
        | Some e when e.en_fixed ->
            {
              ac_candidates = List.rev acc;
              ac_terminal =
                Some
                  { tg_depth = depth; tg_slot = e.en_slot; tg_frozen = e.en_frozen };
            }
        | Some e -> go (depth + 1) rest ((depth, e.en_slot) :: acc)
        | None -> go (depth + 1) rest acc)
  in
  go 0 env []

(* --- which [let]/[const] names land in the scope a statement list runs in —
   the runtime reachability rule of [Interp.exec_stmt] --- *)

let lexical_names (stmts : Ast.stmt list) : string list =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      out := n :: !out
    end
  in
  let rec walk (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Var_decl ((Ast.Let | Ast.Const), decls) ->
        List.iter (fun (n, _) -> add n) decls
    | Ast.If (_, t, f) ->
        walk t;
        Option.iter walk f
    | Ast.While (_, b) | Ast.Do_while (b, _) | Ast.Labeled (_, b) -> walk b
    | _ -> ()
    (* Block / For / For_in / For_of / Try / Switch open their own scopes;
       Func_decl bodies are separate functions *)
  in
  List.iter walk stmts;
  List.rev !out

(* --- hoisting (via the tree-walker's own traversal) --- *)

(* First-occurrence-ordered hoisted [var] names and source-ordered function
   declarations of a function (or program) body. *)
let hoisted (body : Ast.stmt list) : string list * (int * Ast.func) list =
  let seen = Hashtbl.create 8 in
  let vars = ref [] in
  let funcs = ref [] in
  List.iter
    (Interp.hoist_stmt
       ~on_var:(fun n ->
         if not (Hashtbl.mem seen n) then begin
           Hashtbl.add seen n ();
           vars := n :: !vars
         end)
       ~on_func:(fun sf -> funcs := sf :: !funcs))
    body;
  (List.rev !vars, List.rev !funcs)

(* --- deopt triggers --- *)

(* Does [stmts] — excluding nested function bodies — contain a construct the
   compiled representation does not handle natively?

   - [delete ident]: needs the live-scope-chain probe semantics;
   - assignment/update targeting a name that matches an enclosing named
     function expression's self binding: must reach the [frozen_names]
     checkpoint ([Q_named_funcexpr_binding_mutable]) through a real scope.

   Both are handled by deopting the *enclosing function* to the tree-walker
   (its closure then carries a bridged Hashtbl scope chain); nested
   functions are scanned when they themselves are compiled. The check is
   purely syntactic (shadowing is ignored), which over-deopts but never
   under-deopts. *)
let stmts_deopt ~(frozen : string list) (stmts : Ast.stmt list) : bool =
  let exception Hit in
  let check_write (lhs : Ast.expr) =
    match lhs.Ast.e with
    | Ast.Ident n when List.mem n frozen -> raise Hit
    | _ -> ()
  in
  let rec expr (x : Ast.expr) =
    match x.Ast.e with
    | Ast.Lit _ | Ast.Ident _ | Ast.This -> ()
    | Ast.Array_lit elems -> List.iter (Option.iter expr) elems
    | Ast.Object_lit props ->
        List.iter
          (fun (pn, v) ->
            (match pn with Ast.PN_computed e -> expr e | _ -> ());
            expr v)
          props
    | Ast.Func _ | Ast.Arrow _ -> () (* scanned when compiled themselves *)
    | Ast.Unary (Ast.Udelete, { Ast.e = Ast.Ident _; _ }) -> raise Hit
    | Ast.Unary (_, e) -> expr e
    | Ast.Binary (_, a, b) | Ast.Logical (_, a, b) | Ast.Seq (a, b) ->
        expr a;
        expr b
    | Ast.Assign (_, l, r) ->
        check_write l;
        expr l;
        expr r
    | Ast.Update (_, _, t) ->
        check_write t;
        expr t
    | Ast.Cond (c, t, f) ->
        expr c;
        expr t;
        expr f
    | Ast.Call (f, args) | Ast.New (f, args) ->
        expr f;
        List.iter expr args
    | Ast.Member (o, p) -> (
        expr o;
        match p with Ast.Pindex e -> expr e | Ast.Pfield _ -> ())
    | Ast.Template parts ->
        List.iter (function Ast.Tsub e -> expr e | Ast.Tstr _ -> ()) parts
  and stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Expr_stmt x | Ast.Throw x -> expr x
    | Ast.Var_decl (_, decls) ->
        List.iter (fun (_, i) -> Option.iter expr i) decls
    | Ast.Func_decl _ -> ()
    | Ast.Return x -> Option.iter expr x
    | Ast.If (c, t, f) ->
        expr c;
        stmt t;
        Option.iter stmt f
    | Ast.Block body -> List.iter stmt body
    | Ast.For (init, c, u, body) ->
        (match init with
        | Some (Ast.FI_decl (_, decls)) ->
            List.iter (fun (_, i) -> Option.iter expr i) decls
        | Some (Ast.FI_expr x) -> expr x
        | None -> ());
        Option.iter expr c;
        Option.iter expr u;
        stmt body
    | Ast.For_in (_, n, o, body) | Ast.For_of (_, n, o, body) ->
        if List.mem n frozen then raise Hit;
        expr o;
        stmt body
    | Ast.While (c, body) ->
        expr c;
        stmt body
    | Ast.Do_while (body, c) ->
        stmt body;
        expr c
    | Ast.Labeled (_, body) -> stmt body
    | Ast.Try (b, h, f) ->
        List.iter stmt b;
        Option.iter (fun (_, hb) -> List.iter stmt hb) h;
        Option.iter (List.iter stmt) f
    | Ast.Switch (d, cases) ->
        expr d;
        List.iter
          (fun (c, b) ->
            Option.iter expr c;
            List.iter stmt b)
          cases
    | Ast.Break _ | Ast.Continue _ | Ast.Empty | Ast.Debugger -> ()
  in
  match List.iter stmt stmts with () -> false | exception Hit -> true

let func_deopts ~(frozen : string list) (f : Ast.func) : bool =
  let frozen =
    match f.Ast.fname with
    | Some n when not f.Ast.is_arrow -> n :: frozen
    | _ -> frozen
  in
  stmts_deopt ~frozen f.Ast.body

(* --- program-level deopt: can this program reach [eval]? ---

   eval code executes in the global scope and may add or replace bindings
   there (hoisting replaces even existing function bindings with fresh
   refs), which would invalidate the compiled program's static resolution
   of its own top-level names. Any program that may call eval is therefore
   executed by the tree-walker from the start. The static test is
   conservative the cheap way round: a direct identifier reference
   (computed from [Analysis.Scope]'s free-variable set — a locally-bound
   [eval] that shadows the builtin still counts, because its *initialiser*
   mentions the free [eval] if it can ever hold the builtin) or a
   syntactic [.eval] / [\["eval"\]] member access. Anything sneakier (a
   computed key assembled at runtime) escapes the scan and is caught by
   the dynamic trap in the eval builtin, which re-runs the whole program
   tree-walked. *)

let mentions_eval_member (prog : Ast.program) : bool =
  let exception Hit in
  let rec expr (x : Ast.expr) =
    match x.Ast.e with
    | Ast.Lit _ | Ast.Ident _ | Ast.This -> ()
    | Ast.Array_lit elems -> List.iter (Option.iter expr) elems
    | Ast.Object_lit props ->
        List.iter
          (fun (pn, v) ->
            (match pn with Ast.PN_computed e -> expr e | _ -> ());
            expr v)
          props
    | Ast.Func f | Ast.Arrow f -> List.iter stmt f.Ast.body
    | Ast.Unary (_, e) -> expr e
    | Ast.Binary (_, a, b) | Ast.Logical (_, a, b) | Ast.Seq (a, b) ->
        expr a;
        expr b
    | Ast.Assign (_, l, r) ->
        expr l;
        expr r
    | Ast.Update (_, _, t) -> expr t
    | Ast.Cond (c, t, f) ->
        expr c;
        expr t;
        expr f
    | Ast.Call (f, args) | Ast.New (f, args) ->
        expr f;
        List.iter expr args
    | Ast.Member (o, p) -> (
        expr o;
        match p with
        | Ast.Pfield "eval" -> raise Hit
        | Ast.Pindex { Ast.e = Ast.Lit (Ast.Lstr "eval"); _ } -> raise Hit
        | Ast.Pindex e -> expr e
        | Ast.Pfield _ -> ())
    | Ast.Template parts ->
        List.iter (function Ast.Tsub e -> expr e | Ast.Tstr _ -> ()) parts
  and stmt (st : Ast.stmt) =
    match st.Ast.s with
    | Ast.Expr_stmt x | Ast.Throw x -> expr x
    | Ast.Var_decl (_, decls) ->
        List.iter (fun (_, i) -> Option.iter expr i) decls
    | Ast.Func_decl f -> List.iter stmt f.Ast.body
    | Ast.Return x -> Option.iter expr x
    | Ast.If (c, t, f) ->
        expr c;
        stmt t;
        Option.iter stmt f
    | Ast.Block body -> List.iter stmt body
    | Ast.For (init, c, u, body) ->
        (match init with
        | Some (Ast.FI_decl (_, decls)) ->
            List.iter (fun (_, i) -> Option.iter expr i) decls
        | Some (Ast.FI_expr x) -> expr x
        | None -> ());
        Option.iter expr c;
        Option.iter expr u;
        stmt body
    | Ast.For_in (_, _, o, body) | Ast.For_of (_, _, o, body) ->
        expr o;
        stmt body
    | Ast.While (c, body) ->
        expr c;
        stmt body
    | Ast.Do_while (body, c) ->
        stmt body;
        expr c
    | Ast.Labeled (_, body) -> stmt body
    | Ast.Try (b, h, f) ->
        List.iter stmt b;
        Option.iter (fun (_, hb) -> List.iter stmt hb) h;
        Option.iter (List.iter stmt) f
    | Ast.Switch (d, cases) ->
        expr d;
        List.iter
          (fun (c, b) ->
            Option.iter expr c;
            List.iter stmt b)
          cases
    | Ast.Break _ | Ast.Continue _ | Ast.Empty | Ast.Debugger -> ()
  in
  match List.iter stmt prog.Ast.prog_body with
  | () -> false
  | exception Hit -> true

let mentions_eval (prog : Ast.program) : bool =
  List.mem "eval" (Analysis.Scope.resolve prog).Analysis.Scope.res_free_all
  || mentions_eval_member prog

(* Top-level code is the program "function"; a [delete ident] there (outside
   any nested function) deopts the whole program, exactly as it deopts a
   function. *)
let program_deopts (prog : Ast.program) : bool =
  mentions_eval prog || stmts_deopt ~frozen:[] prog.Ast.prog_body
