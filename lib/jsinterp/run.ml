(* Top-level engine entry: source in, classified result out.

   [run] is what a "testbed" executes. It builds a fresh realm, parses with
   the engine's front-end options, executes with the engine's quirk set, and
   classifies the outcome in the vocabulary of the paper's Figure 5. *)

type status =
  | Sts_normal
  | Sts_uncaught of string * string  (** error name, message *)
  | Sts_crash of string              (** simulated engine crash *)
  | Sts_timeout                      (** fuel exhausted *)

type result = {
  r_parsed : bool;
  r_parse_error : string option;
  r_status : status;
  r_output : string;
  r_fuel_used : int;
  r_fired : Quirk.Set.t;   (** ground-truth quirks whose deviant path ran *)
  r_touched : Quirk.Set.t;
      (** quirk checkpoints consulted by the run, active or not — a
          superset of [r_fired]; the execution-sharing class key *)
  r_coverage : Coverage.summary option;
}

let status_to_string = function
  | Sts_normal -> "normal"
  | Sts_uncaught (name, msg) -> Printf.sprintf "uncaught %s: %s" name msg
  | Sts_crash msg -> "crash: " ^ msg
  | Sts_timeout -> "timeout"

let default_fuel = 2_000_000

(* Cumulative interpreter-execution count, across all domains — the
   execution-side analogue of [Jsparse.Parser.parse_count]. Incremented
   once per program actually evaluated (never for parse failures or for
   results inherited through the execution-sharing layer), so a campaign
   can report executions-per-case and the tests can assert how much work
   sharing saved. *)
let runs = Atomic.make 0

let run_count () = Atomic.get runs

(* Slot-compiled execution ([Compile]) is on unless COMFORT_NO_RESOLVE is
   set to a non-empty value — the same contract as COMFORT_NO_SHARE for the
   execution-sharing layer. *)
let resolve_by_default () =
  match Sys.getenv_opt "COMFORT_NO_RESOLVE" with
  | None | Some "" -> true
  | Some _ -> false

(* Static quirk-reachability ([Analysis.Reach]) is on unless
   COMFORT_NO_REACH is set to a non-empty value — same contract as
   COMFORT_NO_SHARE / COMFORT_NO_RESOLVE. *)
let reach_by_default () =
  match Sys.getenv_opt "COMFORT_NO_REACH" with
  | None | Some "" -> true
  | Some _ -> false

(* Quirk-specialised execution (copy-on-write realms, per-cell compiled
   closures, inline caches — see [Compile] and [Realm]) is on unless
   COMFORT_NO_SPECIALIZE is set to a non-empty value. *)
let specialize_by_default () =
  match Sys.getenv_opt "COMFORT_NO_SPECIALIZE" with
  | None | Some "" -> true
  | Some _ -> false

(* Per-stage wall-clock attribution, for the benchmark harness. Off by
   default: an execution pays one ref read per stage. Counters are
   nanosecond totals, atomic so parallel campaigns can be attributed. *)
module Stage = struct
  let enabled = ref false
  let parse_ns = Atomic.make 0
  let compile_ns = Atomic.make 0
  let realm_ns = Atomic.make 0
  let exec_ns = Atomic.make 0

  let reset () =
    List.iter
      (fun c -> Atomic.set c 0)
      [ parse_ns; compile_ns; realm_ns; exec_ns ]

  (* (parse, compile, realm-install, exec) nanosecond totals *)
  let read () =
    ( Atomic.get parse_ns,
      Atomic.get compile_ns,
      Atomic.get realm_ns,
      Atomic.get exec_ns )

  let time (slot : int Atomic.t) (f : unit -> 'a) : 'a =
    if not !enabled then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
          ignore (Atomic.fetch_and_add slot ns))
        f
    end
end

(* Parser-level quirks live in the front end: derive the engine's parse
   options from its quirk set so a profile is a single source of truth. *)
let parse_opts_of ~(base : Jsparse.Parser.options) (quirks : Quirk.Set.t) :
    Jsparse.Parser.options =
  let mem q = Quirk.Set.mem q quirks in
  {
    base with
    Jsparse.Parser.accept_for_missing_body =
      base.Jsparse.Parser.accept_for_missing_body
      || mem Quirk.Q_eval_for_missing_body_accepted;
    accept_dup_params_strict =
      base.Jsparse.Parser.accept_dup_params_strict
      || mem Quirk.Q_strict_dup_params_accepted;
    accept_strict_delete_unqualified =
      base.Jsparse.Parser.accept_strict_delete_unqualified
      || mem Quirk.Q_strict_delete_unqualified_accepted;
  }

let make_ctx ?(quirks = Quirk.Set.empty) ?(parse_opts = Jsparse.Parser.default_options)
    ?(fuel = default_fuel) ?(coverage = false) ?(snapshot = false)
    ?(cow = false) () : Value.ctx =
  (* [snapshot] builds the realm by copying the [Realm] template instead
     of re-running [Builtins.install]; the resulting context is
     indistinguishable (same globals, same empty fired/touched sets, no
     fuel spent) but several times cheaper to construct. Selected by the
     [resolve] execution mode. [cow] goes further and shares the domain's
     template itself behind the [Value.barrier] write barrier — the caller
     MUST call [Realm.release] when the execution is over, on every exit
     path, to roll the copy-on-write journal back. *)
  let snap =
    if cow then Some (Realm.acquire ())
    else if snapshot then Some (Realm.fresh ())
    else None
  in
  let global =
    match snap with
    | Some (g, _) -> g
    | None -> Value.make_obj ~oclass:"Object" ()
  in
  let global_scope =
    { Value.bindings = Hashtbl.create 16; parent = None; frozen_names = [] }
  in
  let ctx : Value.ctx =
    {
      Value.global;
      global_scope;
      quirks;
      parse_opts;
      fuel;
      fuel_cap = fuel;
      out = Buffer.create 256;
      fired = Quirk.Set.empty;
      touched = Quirk.Set.empty;
      call_hook = (fun _ _ _ _ -> Value.Undefined);
      eval_hook = (fun _ _ _ _ -> Value.Undefined);
      coverage = (if coverage then Some (Coverage.create ()) else None);
      loop_trip = 0;
      strconcat_drop_armed = true;
      protos = [];
      depth = 0;
      cur_this = Value.Obj global;
      slotted = false;
      specials_shadowed = false;
      ic_gen = Atomic.fetch_and_add Value.ic_gen_counter 1;
      ihits = 0;
    }
  in
  (match snap with
  | Some (_, protos) -> ctx.Value.protos <- protos
  | None -> ());
  ctx.call_hook <- (fun ctx fn this args -> Interp.call_function ctx fn this args);
  ctx.eval_hook <-
    (fun ctx scope strict src ->
      (* wire quirk firing out of the engine's parser *)
      let opts =
        {
          ctx.parse_opts with
          Jsparse.Parser.quirk_sink =
            (fun name ->
              match Quirk.of_string name with
              | Some q when Value.quirk_on ctx q ->
                  ctx.fired <- Quirk.Set.add q ctx.fired
              | _ -> ());
        }
      in
      match Jsparse.Parser.parse_program ~opts ~force_strict:strict src with
      | prog -> Interp.exec_in_scope ctx scope ~strict prog
      | exception Jsparse.Parser.Syntax_error (msg, _) ->
          Ops.syntax_error ctx msg);
  (match snap with None -> Builtins.install ctx | Some _ -> ());
  ctx

(* [this] binding for top-level code *)
let bind_globals ctx =
  Hashtbl.replace ctx.Value.global_scope.Value.bindings "this"
    (ref (Value.Obj ctx.Value.global))

(* --- front end, separable from execution ---

   A [frontend] is the outcome of one parse: the program (or the syntax
   error) plus every parse-stage quirk the front end sank, unfiltered.
   Testbeds whose effective parse options and mode coincide can share one
   [frontend] — [run ?frontend] then skips its own parse and intersects
   the sunk quirks with the caller's quirk set, which is exactly the
   filtering the inline parse would have done. *)

type frontend = {
  fe_program : (Jsast.Ast.program, string * int) Stdlib.result;
      (** parsed program, or (message, line) of the syntax error *)
  fe_fired : Quirk.Set.t;
      (** parse-stage quirks sunk by the front end, unfiltered; callers
          intersect with their own quirk set *)
  fe_compiled : (bool * bool * int, Compile.t) Hashtbl.t;
      (** slot-compiled program, cached per front end and keyed by
          (strict mode, reach setting, specialisation cell key) — a strict
          override rewrites the program, reach folds checkpoints, and a
          specialisation cell bakes in the answers of the inline
          checkpoints ([Compile.cell_key]; -1 = the generic, unspecialised
          form). Testbeds sharing a front end share the compilations — the
          compile-stage analogue of sharing the parse; since only the
          inline-checkpoint projection keys the cache, the whole testbed
          pool compiles each program once or twice in practice. *)
  fe_reach : Quirk.Set.t Lazy.t;
      (** static over-approximation of the checkpoints any execution of
          this front end's program can consult: the [Analysis.Reach] set
          of the parsed program joined with the parse-stage quirks sunk by
          the front end (a parse failure consults nothing at run time).
          Lazy: only forced when the reach layer is on. *)
  fe_reach_bits : Quirk.Bits.t Lazy.t;
      (** [fe_reach] packed into machine words, for the execution-sharing
          cache's per-testbed cell computation *)
  fe_strict_sensitive : bool;
      (** the parse reached a construct whose outcome depends on the
          ambient strict flag; [false] on a sloppy parse proves a
          [force_strict] parse identical (the mode itself is re-applied
          downstream through the compiled program's strict key) *)
}

let parse_frontend ?(quirks = Quirk.Set.empty)
    ?(parse_opts = Jsparse.Parser.default_options) ?(strict = false)
    ?reach_strict (src : string) : frontend =
  let reach_strict = Option.value reach_strict ~default:strict in
  let parse_opts = parse_opts_of ~base:parse_opts quirks in
  let fired = ref Quirk.Set.empty in
  let sensitive = ref false in
  let opts =
    {
      parse_opts with
      Jsparse.Parser.quirk_sink =
        (fun name ->
          match Quirk.of_string name with
          | Some q -> fired := Quirk.Set.add q !fired
          | None -> ());
      Jsparse.Parser.strict_sensitive_sink = (fun () -> sensitive := true);
    }
  in
  let frontend fe_program fe_fired =
    let fe_reach =
      lazy
        (match fe_program with
        | Error _ -> fe_fired
        | Ok prog ->
            Quirk.Set.union fe_fired
              (Analysis.Reach.checkpoints ~strict:reach_strict prog))
    in
    {
      fe_program;
      fe_fired;
      fe_compiled = Hashtbl.create 4;
      fe_reach;
      fe_reach_bits = lazy (Quirk.Bits.of_set (Lazy.force fe_reach));
      fe_strict_sensitive = !sensitive;
    }
  in
  match
    Stage.time Stage.parse_ns (fun () ->
        Jsparse.Parser.parse_program ~opts ~force_strict:strict src)
  with
  | prog -> frontend (Ok prog) !fired
  | exception Jsparse.Parser.Syntax_error (msg, line) ->
      frontend (Error (msg, line)) !fired

(* The front end's static touch-set (forces the lazy analysis). *)
let reach_set (fe : frontend) : Quirk.Set.t = Lazy.force fe.fe_reach

(* --- execution, separable from the engine that ran it ---

   An [exec] is one interpreter execution together with the evidence needed
   to lend its result to other engines: the quirk set it ran under and the
   execution-stage fired/touched sets (excluding the top-level parse, which
   is per-member — see [share]). The interpreter is deterministic given
   (program, mode, effective parse options, answers at quirk checkpoints),
   and [ex_touched] is exactly the set of checkpoints whose answer was
   consulted, so any engine agreeing with [ex_quirks] on [ex_touched]
   replays the run bit for bit. *)

type exec = {
  ex_result : result;       (** the representative's own full result *)
  ex_quirks : Quirk.Set.t;  (** quirk set the representative ran under *)
  ex_fired : Quirk.Set.t;   (** execution-stage fired set (no parse stage) *)
  ex_touched : Quirk.Set.t; (** execution-stage touched set *)
  ex_qbits : Quirk.Bits.t;  (** [ex_quirks] packed into machine words *)
  ex_tbits : Quirk.Bits.t;  (** [ex_touched] packed into machine words *)
}

let run_exec ?(quirks = Quirk.Set.empty)
    ?(parse_opts = Jsparse.Parser.default_options) ?(strict = false)
    ?(fuel = default_fuel) ?(coverage = false) ?resolve ?reach ?specialize
    ?frontend (src : string) : exec =
  let resolve =
    match resolve with Some r -> r | None -> resolve_by_default ()
  in
  let reach = match reach with Some r -> r | None -> reach_by_default () in
  let specialize =
    match specialize with Some s -> s | None -> specialize_by_default ()
  in
  let fe =
    match frontend with
    | Some fe -> fe
    | None -> parse_frontend ~quirks ~parse_opts ~strict src
  in
  (* the pre-parsed front end sank quirks unfiltered; keep only this
     engine's *)
  let parse_fired = Quirk.Set.inter fe.fe_fired quirks in
  match fe.fe_program with
  | Error (msg, line) ->
      {
        ex_result =
          {
            r_parsed = false;
            r_parse_error = Some (Printf.sprintf "line %d: %s" line msg);
            r_status = Sts_normal;
            r_output = "";
            r_fuel_used = 0;
            r_fired = parse_fired;
            r_touched = parse_fired;
            r_coverage = None;
          };
        ex_quirks = quirks;
        ex_fired = Quirk.Set.empty;
        ex_touched = Quirk.Set.empty;
        ex_qbits = Quirk.Bits.of_set quirks;
        ex_tbits = Quirk.Bits.empty;
      }
  | Ok prog ->
      Atomic.incr runs;
      let parse_opts = parse_opts_of ~base:parse_opts quirks in
      (* copy, never mutate: [prog] may be shared across testbeds *)
      let prog =
        if strict && not prog.Jsast.Ast.prog_strict then
          { prog with Jsast.Ast.prog_strict = true }
        else prog
      in
      let compiled =
        if not resolve then None
        else begin
          (* the specialisation cell: the quirks this engine carries among
             those any execution can consult. Only its projection onto the
             inline-compiled checkpoints affects code generation, so the
             cache key collapses every cell to [Compile.cell_key] (-1 =
             generic, unspecialised) *)
          let cell =
            if not specialize then None
            else if reach then
              Some (Quirk.Set.inter quirks (Lazy.force fe.fe_reach))
            else Some quirks
          in
          let spec_key =
            match cell with None -> -1 | Some c -> Compile.cell_key c
          in
          let key = (strict, reach, spec_key) in
          match Hashtbl.find_opt fe.fe_compiled key with
          | Some cp -> Some cp
          | None ->
              let reach_arg =
                if reach then Some (Lazy.force fe.fe_reach) else None
              in
              let cp =
                Stage.time Stage.compile_ns (fun () ->
                    Compile.compile ?reach:reach_arg ?cell prog)
              in
              Hashtbl.replace fe.fe_compiled key cp;
              Some cp
        end
      in
      (* copy-on-write realms ride the specialise flag: the context borrows
         the domain's shared template and [Realm.release] rolls the write
         journal back after the run — on every exit path, including the
         deopt-to-tree replay, which must see a pristine realm *)
      let cow = resolve && specialize in
      let run_with runner =
        let ctx =
          Stage.time Stage.realm_ns (fun () ->
              make_ctx ~quirks ~parse_opts ~fuel ~coverage ~snapshot:resolve
                ~cow ())
        in
        bind_globals ctx;
        Fun.protect
          ~finally:(fun () -> if cow then Realm.release ())
          (fun () ->
            let status =
              try
                Stage.time Stage.exec_ns (fun () -> runner ctx);
                Sts_normal
              with
              | Value.Js_throw v ->
                  let name, msg =
                    match v with
                    | Value.Obj o ->
                        let get k =
                          match Value.find_own o k with
                          | Some p -> (
                              match p.Value.v with Value.Str s -> s | _ -> "")
                          | None -> ""
                        in
                        let n = get "name" in
                        ((if n = "" then "Error" else n), get "message")
                    | Value.Str s -> ("", s)
                    | v -> ("", Ops.number_to_string (match v with Value.Num f -> f | _ -> 0.0))
                  in
                  Sts_uncaught (name, msg)
              | Value.Engine_crash msg -> Sts_crash msg
              | Value.Out_of_fuel -> Sts_timeout
              | Stack_overflow -> Sts_crash "stack exhausted"
            in
            (ctx, status))
      in
      let tree_run ctx = ignore (Interp.exec_program ctx prog) in
      let ctx, status =
        match compiled with
        | None -> run_with tree_run
        | Some cp -> (
            (* if the compiled program hits a dynamic feature its slots
               cannot honour (a computed-access eval the static scan
               missed), the eval builtin raises before any side effect;
               discard the context and re-run tree-walked — not counted as
               a second execution, since it replays the same program *)
            match run_with (fun ctx -> ignore (Compile.run cp ctx)) with
            | exception Value.Deopt_to_tree -> run_with tree_run
            | r -> r)
      in
      if ctx.Value.ihits > 0 then
        ignore (Atomic.fetch_and_add Value.ic_hits ctx.Value.ihits);
      {
        ex_result =
          {
            r_parsed = true;
            r_parse_error = None;
            r_status = status;
            r_output = Buffer.contents ctx.Value.out;
            r_fuel_used = ctx.Value.fuel_cap - ctx.Value.fuel;
            r_fired = Quirk.Set.union parse_fired ctx.Value.fired;
            r_touched = Quirk.Set.union parse_fired ctx.Value.touched;
            r_coverage =
              Option.map (fun c -> Coverage.summarize c prog) ctx.Value.coverage;
          };
        ex_quirks = quirks;
        ex_fired = ctx.Value.fired;
        ex_touched = ctx.Value.touched;
        ex_qbits = Quirk.Bits.of_set quirks;
        ex_tbits = Quirk.Bits.of_set ctx.Value.touched;
      }

let run ?quirks ?parse_opts ?strict ?fuel ?coverage ?resolve ?reach
    ?specialize ?frontend (src : string) : result =
  (run_exec ?quirks ?parse_opts ?strict ?fuel ?coverage ?resolve ?reach
     ?specialize ?frontend src)
    .ex_result

(* Does an engine carrying [quirks] belong to [ex]'s behavioural
   equivalence class? True iff it agrees with the representative at every
   checkpoint the representative's execution consulted — then every
   conformance decision resolves the same way, control flow is identical,
   and (in particular) exactly the same checkpoints get consulted, so the
   verdict is self-validating: no member can secretly reach a checkpoint
   outside [ex_touched]. *)
let shares_class ~quirks (ex : exec) : bool =
  Quirk.Set.equal
    (Quirk.Set.inter quirks ex.ex_touched)
    (Quirk.Set.inter ex.ex_quirks ex.ex_touched)

(* The same decision on packed words — a handful of integer instructions
   instead of two balanced-tree intersections. The execution-sharing cache
   calls this once per (testbed, representative) pair, which profiling
   shows is the hottest set algebra in a campaign. *)
let shares_class_bits ~(qbits : Quirk.Bits.t) (ex : exec) : bool =
  Quirk.Bits.equal
    (Quirk.Bits.inter qbits ex.ex_tbits)
    (Quirk.Bits.inter ex.ex_qbits ex.ex_tbits)

(* The class member's result: execution is inherited verbatim; only the
   parse-stage quirk filter is per-member ([frontend] sank parse quirks
   unfiltered, and members of one parse group may own different subsets).
   A quirk both sunk at parse time and fired during execution is on for
   every member (it is in the class key), so the union loses nothing. *)
let share ~(frontend : frontend) ~quirks (ex : exec) : result =
  let parse_fired = Quirk.Set.inter frontend.fe_fired quirks in
  {
    ex.ex_result with
    r_fired = Quirk.Set.union parse_fired ex.ex_fired;
    r_touched = Quirk.Set.union parse_fired ex.ex_touched;
  }

(* Convenience for tests and examples: run on the standard-conforming
   reference engine and return printed output. *)
let output_of ?quirks ?strict ?fuel (src : string) : string =
  (run ?quirks ?strict ?fuel src).r_output
