(* Top-level engine entry: source in, classified result out.

   [run] is what a "testbed" executes. It builds a fresh realm, parses with
   the engine's front-end options, executes with the engine's quirk set, and
   classifies the outcome in the vocabulary of the paper's Figure 5. *)

type status =
  | Sts_normal
  | Sts_uncaught of string * string  (** error name, message *)
  | Sts_crash of string              (** simulated engine crash *)
  | Sts_timeout                      (** fuel exhausted *)

type result = {
  r_parsed : bool;
  r_parse_error : string option;
  r_status : status;
  r_output : string;
  r_fuel_used : int;
  r_fired : Quirk.Set.t;   (** ground-truth quirks whose deviant path ran *)
  r_touched : Quirk.Set.t;
      (** quirk checkpoints consulted by the run, active or not — a
          superset of [r_fired]; the execution-sharing class key *)
  r_coverage : Coverage.summary option;
}

let status_to_string = function
  | Sts_normal -> "normal"
  | Sts_uncaught (name, msg) -> Printf.sprintf "uncaught %s: %s" name msg
  | Sts_crash msg -> "crash: " ^ msg
  | Sts_timeout -> "timeout"

let default_fuel = 2_000_000

(* Cumulative interpreter-execution count, across all domains — the
   execution-side analogue of [Jsparse.Parser.parse_count]. Incremented
   once per program actually evaluated (never for parse failures or for
   results inherited through the execution-sharing layer), so a campaign
   can report executions-per-case and the tests can assert how much work
   sharing saved. *)
let runs = Atomic.make 0

let run_count () = Atomic.get runs

(* Fold executions performed elsewhere (a forked campaign worker, whose
   address space dies with it) into this process's count; the
   coordinator calls it with per-task deltas so campaign statistics are
   identical with and without process isolation. *)
let add_runs n = if n > 0 then ignore (Atomic.fetch_and_add runs n)

(* Slot-compiled execution ([Compile]) is on unless COMFORT_NO_RESOLVE is
   set to a non-empty value — the same contract as COMFORT_NO_SHARE for the
   execution-sharing layer. *)
let resolve_by_default () =
  match Sys.getenv_opt "COMFORT_NO_RESOLVE" with
  | None | Some "" -> true
  | Some _ -> false

(* Static quirk-reachability ([Analysis.Reach]) is on unless
   COMFORT_NO_REACH is set to a non-empty value — same contract as
   COMFORT_NO_SHARE / COMFORT_NO_RESOLVE. *)
let reach_by_default () =
  match Sys.getenv_opt "COMFORT_NO_REACH" with
  | None | Some "" -> true
  | Some _ -> false

(* Quirk-specialised execution (copy-on-write realms, per-cell compiled
   closures, inline caches — see [Compile] and [Realm]) is on unless
   COMFORT_NO_SPECIALIZE is set to a non-empty value. *)
let specialize_by_default () =
  match Sys.getenv_opt "COMFORT_NO_SPECIALIZE" with
  | None | Some "" -> true
  | Some _ -> false

(* Whole-pipeline profiler. Off by default: a disabled probe pays one ref
   read. Two layers of attribution:

   - {e pipeline stages} (generate, screen, sweep, vote, attr, reduce,
     fold) partition a campaign's wall clock. [time] attributes to the
     OUTERMOST active stage only (a per-domain re-entrancy flag): when the
     reducer replays a case through the sweep+vote path, the inner probes
     are no-ops, so at jobs=1 the stage sums can never double-count and
     their total is a lower bound on wall (what's missing is the
     unaccounted residual the bench gates below 10%). At jobs>1 the
     worker domains accumulate concurrently, so the sums bound wall times
     the domain count instead — CPU-time attribution, not wall.

   - {e interpreter substages} (parse, compile, realm-install, exec) nest
     inside whichever pipeline stage is running them and always record
     ([time_sub]); they answer "of the sweep's cost, how much is the
     engine core?" and are reported as a separate layer, never added to
     the pipeline total.

   Each slot accumulates wall nanoseconds and allocated bytes
   ([Gc.allocated_bytes] delta — per-domain in OCaml 5, so concurrent
   stages don't bleed into each other) as atomics, so parallel campaigns
   attribute to the same counters. *)
module Stage = struct
  let enabled = ref false

  type slot = { ns : int Atomic.t; bytes : int Atomic.t }

  let mk () = { ns = Atomic.make 0; bytes = Atomic.make 0 }

  (* interpreter substages *)
  let parse = mk ()
  let compile = mk ()
  let realm = mk ()
  let exec = mk ()

  (* disjoint pipeline stages *)
  let generate = mk ()
  let screen = mk ()
  let sweep = mk ()
  let vote = mk ()
  let attr = mk ()
  let reduce = mk ()
  let fold = mk ()

  let sub_slots =
    [ ("parse", parse); ("compile", compile); ("realm", realm); ("exec", exec) ]

  let pipe_slots =
    [
      ("generate", generate);
      ("screen", screen);
      ("sweep", sweep);
      ("vote", vote);
      ("attr", attr);
      ("reduce", reduce);
      ("fold", fold);
    ]

  let reset () =
    List.iter
      (fun (_, s) ->
        Atomic.set s.ns 0;
        Atomic.set s.bytes 0)
      (sub_slots @ pipe_slots)

  (* legacy view: (parse, compile, realm-install, exec) nanosecond totals *)
  let read () =
    ( Atomic.get parse.ns,
      Atomic.get compile.ns,
      Atomic.get realm.ns,
      Atomic.get exec.ns )

  let read_of slots =
    List.map (fun (n, s) -> (n, Atomic.get s.ns, Atomic.get s.bytes)) slots

  (* (name, wall ns, allocated bytes) rows, in pipeline order *)
  let pipeline () = read_of pipe_slots
  let substages () = read_of sub_slots

  let record (slot : slot) (t0 : float) (a0 : float) : unit =
    let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    let b = int_of_float (Gc.allocated_bytes () -. a0) in
    ignore (Atomic.fetch_and_add slot.ns ns);
    ignore (Atomic.fetch_and_add slot.bytes b)

  (* interpreter-substage probe: always records when enabled *)
  let time_sub (slot : slot) (f : unit -> 'a) : 'a =
    if not !enabled then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      let a0 = Gc.allocated_bytes () in
      Fun.protect ~finally:(fun () -> record slot t0 a0) f
    end

  (* pipeline-stage probe: outermost active stage wins (per domain) *)
  let in_stage : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

  let time (slot : slot) (f : unit -> 'a) : 'a =
    if not !enabled then f ()
    else begin
      let flag = Domain.DLS.get in_stage in
      if !flag then f ()
      else begin
        flag := true;
        let t0 = Unix.gettimeofday () in
        let a0 = Gc.allocated_bytes () in
        Fun.protect
          ~finally:(fun () ->
            flag := false;
            record slot t0 a0)
          f
      end
    end
end

(* --- per-domain execution scratch (COMFORT_GC) ---

   A campaign performs ~12.5 interpreter executions per case, each
   allocating a fresh output buffer, global-scope table, realm copy and
   frame graph. Recycling the two allocations that provably die with
   their execution cuts steady-state allocation several-fold (the bench's
   per-stage byte columns show exec dropping ~5x); COMFORT_GC=off (or =0)
   is the escape hatch restoring the exact allocation behaviour of
   earlier builds. Results are bit-identical either way — the CI runs a
   full COMFORT_GC=off suite leg to prove it.

   Minor-heap widening was tried here and measured as a regression:
   growing the per-domain minor heap to 4M words (32MB) cost ~10% on the
   production bench row, and 1M words still cost ~5% — the interpreter's
   working set lives in cache under the default 256k-word minor heap and
   a wider nursery trades cheap minor collections for cache misses. The
   default heap geometry is deliberately left alone (EXPERIMENTS.md
   records the numbers). *)
let gc_by_default () =
  match Sys.getenv_opt "COMFORT_GC" with
  | Some "off" | Some "0" -> false
  | None | Some _ -> true

(* Execution scratch, recycled per domain: the [ctx.out] buffer and the
   global scope's bindings table are the two per-execution allocations
   that provably die with the execution — [r_output] is an immutable
   string copy ([Buffer.contents]) and nothing outlives [run_exec] that
   can still reach the scope (the COW rollback / realm-copy discard takes
   any closure created during the run with it). Each domain keeps one
   slot of each; [take] empties the slot (so any unexpected reentrancy
   simply allocates fresh) and resets the scratch before reuse, [release]
   refits the slot at the exec's report boundary. Compiled frames are
   deliberately NOT recycled: closures capture them and may legally
   outlive statements (DESIGN.md §13). *)
module Scratch = struct
  type slot = {
    mutable sc_buf : Buffer.t option;
    mutable sc_bindings : (string, Value.value ref) Hashtbl.t option;
  }

  let key : slot Domain.DLS.key =
    Domain.DLS.new_key (fun () -> { sc_buf = None; sc_bindings = None })

  let buffer () : Buffer.t =
    let s = Domain.DLS.get key in
    match s.sc_buf with
    | Some b when gc_by_default () ->
        s.sc_buf <- None;
        Buffer.reset b;
        b
    | _ -> Buffer.create 256

  let bindings () : (string, Value.value ref) Hashtbl.t =
    let s = Domain.DLS.get key in
    match s.sc_bindings with
    | Some h when gc_by_default () ->
        s.sc_bindings <- None;
        Hashtbl.reset h;
        h
    | _ -> Hashtbl.create 16

  let release (ctx : Value.ctx) : unit =
    if gc_by_default () then begin
      let s = Domain.DLS.get key in
      s.sc_buf <- Some ctx.Value.out;
      s.sc_bindings <- Some ctx.Value.global_scope.Value.bindings
    end
end

(* Parser-level quirks live in the front end: derive the engine's parse
   options from its quirk set so a profile is a single source of truth. *)
let parse_opts_of ~(base : Jsparse.Parser.options) (quirks : Quirk.Set.t) :
    Jsparse.Parser.options =
  let mem q = Quirk.Set.mem q quirks in
  {
    base with
    Jsparse.Parser.accept_for_missing_body =
      base.Jsparse.Parser.accept_for_missing_body
      || mem Quirk.Q_eval_for_missing_body_accepted;
    accept_dup_params_strict =
      base.Jsparse.Parser.accept_dup_params_strict
      || mem Quirk.Q_strict_dup_params_accepted;
    accept_strict_delete_unqualified =
      base.Jsparse.Parser.accept_strict_delete_unqualified
      || mem Quirk.Q_strict_delete_unqualified_accepted;
  }

let make_ctx ?(quirks = Quirk.Set.empty) ?(parse_opts = Jsparse.Parser.default_options)
    ?(fuel = default_fuel) ?(coverage = false) ?(snapshot = false)
    ?(cow = false) () : Value.ctx =
  (* [snapshot] builds the realm by copying the [Realm] template instead
     of re-running [Builtins.install]; the resulting context is
     indistinguishable (same globals, same empty fired/touched sets, no
     fuel spent) but several times cheaper to construct. Selected by the
     [resolve] execution mode. [cow] goes further and shares the domain's
     template itself behind the [Value.barrier] write barrier — the caller
     MUST call [Realm.release] when the execution is over, on every exit
     path, to roll the copy-on-write journal back. *)
  let snap =
    if cow then Some (Realm.acquire ())
    else if snapshot then Some (Realm.fresh ())
    else None
  in
  let global =
    match snap with
    | Some (g, _) -> g
    | None -> Value.make_obj ~oclass:"Object" ()
  in
  let global_scope =
    { Value.bindings = Scratch.bindings (); parent = None; frozen_names = [] }
  in
  let q_lo, q_hi = Quirk.Bits.of_set quirks in
  let ctx : Value.ctx =
    {
      Value.global;
      global_scope;
      quirks;
      parse_opts;
      fuel;
      fuel_cap = fuel;
      out = Scratch.buffer ();
      q_lo;
      q_hi;
      f_lo = 0;
      f_hi = 0;
      t_lo = 0;
      t_hi = 0;
      call_hook = (fun _ _ _ _ -> Value.Undefined);
      eval_hook = (fun _ _ _ _ -> Value.Undefined);
      coverage = (if coverage then Some (Coverage.create ()) else None);
      loop_trip = 0;
      strconcat_drop_armed = true;
      protos = [];
      depth = 0;
      cur_this = Value.Obj global;
      slotted = false;
      specials_shadowed = false;
      ic_gen = Atomic.fetch_and_add Value.ic_gen_counter 1;
      ihits = 0;
    }
  in
  (match snap with
  | Some (_, protos) -> ctx.Value.protos <- protos
  | None -> ());
  ctx.call_hook <- (fun ctx fn this args -> Interp.call_function ctx fn this args);
  ctx.eval_hook <-
    (fun ctx scope strict src ->
      (* wire quirk firing out of the engine's parser *)
      let opts =
        {
          ctx.parse_opts with
          Jsparse.Parser.quirk_sink =
            (fun name ->
              match Quirk.of_string name with
              | Some q -> ignore (Value.fire ctx q)
              | None -> ());
        }
      in
      match Jsparse.Parser.parse_program ~opts ~force_strict:strict src with
      | prog -> Interp.exec_in_scope ctx scope ~strict prog
      | exception Jsparse.Parser.Syntax_error (msg, _) ->
          Ops.syntax_error ctx msg);
  (match snap with None -> Builtins.install ctx | Some _ -> ());
  ctx

(* [this] binding for top-level code *)
let bind_globals ctx =
  Hashtbl.replace ctx.Value.global_scope.Value.bindings "this"
    (ref (Value.Obj ctx.Value.global))

(* --- front end, separable from execution ---

   A [frontend] is the outcome of one parse: the program (or the syntax
   error) plus every parse-stage quirk the front end sank, unfiltered.
   Testbeds whose effective parse options and mode coincide can share one
   [frontend] — [run ?frontend] then skips its own parse and intersects
   the sunk quirks with the caller's quirk set, which is exactly the
   filtering the inline parse would have done. *)

type frontend = {
  fe_program : (Jsast.Ast.program, string * int) Stdlib.result;
      (** parsed program, or (message, line) of the syntax error *)
  fe_fired : Quirk.Set.t;
      (** parse-stage quirks sunk by the front end, unfiltered; callers
          intersect with their own quirk set *)
  fe_compiled : (bool * bool * int, Compile.t) Hashtbl.t;
      (** slot-compiled program, cached per front end and keyed by
          (strict mode, reach setting, specialisation cell key) — a strict
          override rewrites the program, reach folds checkpoints, and a
          specialisation cell bakes in the answers of the inline
          checkpoints ([Compile.cell_key]; -1 = the generic, unspecialised
          form). Testbeds sharing a front end share the compilations — the
          compile-stage analogue of sharing the parse; since only the
          inline-checkpoint projection keys the cache, the whole testbed
          pool compiles each program once or twice in practice. *)
  fe_reach : Quirk.Set.t Lazy.t;
      (** static over-approximation of the checkpoints any execution of
          this front end's program can consult: the [Analysis.Reach] set
          of the parsed program joined with the parse-stage quirks sunk by
          the front end (a parse failure consults nothing at run time).
          Lazy: only forced when the reach layer is on. *)
  fe_reach_bits : Quirk.Bits.t Lazy.t;
      (** [fe_reach] packed into machine words, for the execution-sharing
          cache's per-testbed cell computation *)
  fe_strict_sensitive : bool;
      (** the parse reached a construct whose outcome depends on the
          ambient strict flag; [false] on a sloppy parse proves a
          [force_strict] parse identical (the mode itself is re-applied
          downstream through the compiled program's strict key) *)
}

let parse_frontend ?(quirks = Quirk.Set.empty)
    ?(parse_opts = Jsparse.Parser.default_options) ?(strict = false)
    ?reach_strict (src : string) : frontend =
  let reach_strict = Option.value reach_strict ~default:strict in
  let parse_opts = parse_opts_of ~base:parse_opts quirks in
  let fired = ref Quirk.Set.empty in
  let sensitive = ref false in
  let opts =
    {
      parse_opts with
      Jsparse.Parser.quirk_sink =
        (fun name ->
          match Quirk.of_string name with
          | Some q -> fired := Quirk.Set.add q !fired
          | None -> ());
      Jsparse.Parser.strict_sensitive_sink = (fun () -> sensitive := true);
    }
  in
  let frontend fe_program fe_fired =
    let fe_reach =
      lazy
        (match fe_program with
        | Error _ -> fe_fired
        | Ok prog ->
            Quirk.Set.union fe_fired
              (Analysis.Reach.checkpoints ~strict:reach_strict prog))
    in
    {
      fe_program;
      fe_fired;
      fe_compiled = Hashtbl.create 4;
      fe_reach;
      fe_reach_bits = lazy (Quirk.Bits.of_set (Lazy.force fe_reach));
      fe_strict_sensitive = !sensitive;
    }
  in
  match
    Stage.time_sub Stage.parse (fun () ->
        Jsparse.Parser.parse_program ~opts ~force_strict:strict src)
  with
  | prog -> frontend (Ok prog) !fired
  | exception Jsparse.Parser.Syntax_error (msg, line) ->
      frontend (Error (msg, line)) !fired

(* The front end's static touch-set (forces the lazy analysis). *)
let reach_set (fe : frontend) : Quirk.Set.t = Lazy.force fe.fe_reach

(* --- execution, separable from the engine that ran it ---

   An [exec] is one interpreter execution together with the evidence needed
   to lend its result to other engines: the quirk set it ran under and the
   execution-stage fired/touched sets (excluding the top-level parse, which
   is per-member — see [share]). The interpreter is deterministic given
   (program, mode, effective parse options, answers at quirk checkpoints),
   and [ex_touched] is exactly the set of checkpoints whose answer was
   consulted, so any engine agreeing with [ex_quirks] on [ex_touched]
   replays the run bit for bit. *)

type exec = {
  ex_result : result;       (** the representative's own full result *)
  ex_quirks : Quirk.Set.t;  (** quirk set the representative ran under *)
  ex_qbits : Quirk.Bits.t;  (** [ex_quirks] packed into machine words *)
  ex_fbits : Quirk.Bits.t;
      (** execution-stage fired set (no parse stage), packed words *)
  ex_tbits : Quirk.Bits.t;  (** execution-stage touched set, packed words *)
  ex_fired : Quirk.Set.t Lazy.t;
      (** [ex_fbits] as a [Quirk.Set.t]; forced only when a class member
          actually inherits parse-stage quirks (see [share]) or by tests *)
  ex_touched : Quirk.Set.t Lazy.t;  (** [ex_tbits] as a [Quirk.Set.t] *)
}

let run_exec ?(quirks = Quirk.Set.empty)
    ?(parse_opts = Jsparse.Parser.default_options) ?(strict = false)
    ?(fuel = default_fuel) ?(coverage = false) ?resolve ?reach ?specialize
    ?frontend (src : string) : exec =
  let resolve =
    match resolve with Some r -> r | None -> resolve_by_default ()
  in
  let reach = match reach with Some r -> r | None -> reach_by_default () in
  let specialize =
    match specialize with Some s -> s | None -> specialize_by_default ()
  in
  let fe =
    match frontend with
    | Some fe -> fe
    | None -> parse_frontend ~quirks ~parse_opts ~strict src
  in
  (* the pre-parsed front end sank quirks unfiltered; keep only this
     engine's *)
  let parse_fired = Quirk.Set.inter fe.fe_fired quirks in
  match fe.fe_program with
  | Error (msg, line) ->
      {
        ex_result =
          {
            r_parsed = false;
            r_parse_error = Some (Printf.sprintf "line %d: %s" line msg);
            r_status = Sts_normal;
            r_output = "";
            r_fuel_used = 0;
            r_fired = parse_fired;
            r_touched = parse_fired;
            r_coverage = None;
          };
        ex_quirks = quirks;
        ex_qbits = Quirk.Bits.of_set quirks;
        ex_fbits = Quirk.Bits.empty;
        ex_tbits = Quirk.Bits.empty;
        ex_fired = lazy Quirk.Set.empty;
        ex_touched = lazy Quirk.Set.empty;
      }
  | Ok prog ->
      Atomic.incr runs;
      let parse_opts = parse_opts_of ~base:parse_opts quirks in
      (* copy, never mutate: [prog] may be shared across testbeds *)
      let prog =
        if strict && not prog.Jsast.Ast.prog_strict then
          { prog with Jsast.Ast.prog_strict = true }
        else prog
      in
      let compiled =
        if not resolve then None
        else begin
          (* the specialisation cell: the quirks this engine carries among
             those any execution can consult. Only its projection onto the
             inline-compiled checkpoints affects code generation, so the
             cache key collapses every cell to [Compile.cell_key] (-1 =
             generic, unspecialised) *)
          let cell =
            if not specialize then None
            else if reach then
              Some (Quirk.Set.inter quirks (Lazy.force fe.fe_reach))
            else Some quirks
          in
          let spec_key =
            match cell with None -> -1 | Some c -> Compile.cell_key c
          in
          let key = (strict, reach, spec_key) in
          match Hashtbl.find_opt fe.fe_compiled key with
          | Some cp -> Some cp
          | None ->
              let reach_arg =
                if reach then Some (Lazy.force fe.fe_reach) else None
              in
              let cp =
                Stage.time_sub Stage.compile (fun () ->
                    Compile.compile ?reach:reach_arg ?cell prog)
              in
              Hashtbl.replace fe.fe_compiled key cp;
              Some cp
        end
      in
      (* copy-on-write realms ride the specialise flag: the context borrows
         the domain's shared template and [Realm.release] rolls the write
         journal back after the run — on every exit path, including the
         deopt-to-tree replay, which must see a pristine realm *)
      let cow = resolve && specialize in
      let run_with runner =
        let ctx =
          Stage.time_sub Stage.realm (fun () ->
              make_ctx ~quirks ~parse_opts ~fuel ~coverage ~snapshot:resolve
                ~cow ())
        in
        bind_globals ctx;
        Fun.protect
          ~finally:(fun () -> if cow then Realm.release ())
          (fun () ->
            let status =
              try
                Stage.time_sub Stage.exec (fun () -> runner ctx);
                Sts_normal
              with
              | Value.Js_throw v ->
                  let name, msg =
                    match v with
                    | Value.Obj o ->
                        let get k =
                          match Value.find_own o k with
                          | Some p -> (
                              match p.Value.v with Value.Str s -> s | _ -> "")
                          | None -> ""
                        in
                        let n = get "name" in
                        ((if n = "" then "Error" else n), get "message")
                    | Value.Str s -> ("", s)
                    | v -> ("", Ops.number_to_string (match v with Value.Num f -> f | _ -> 0.0))
                  in
                  Sts_uncaught (name, msg)
              | Value.Engine_crash msg -> Sts_crash msg
              | Value.Out_of_fuel -> Sts_timeout
              | Stack_overflow -> Sts_crash "stack exhausted"
            in
            (ctx, status))
      in
      let tree_run ctx = ignore (Interp.exec_program ctx prog) in
      let ctx, status =
        match compiled with
        | None -> run_with tree_run
        | Some cp -> (
            (* if the compiled program hits a dynamic feature its slots
               cannot honour (a computed-access eval the static scan
               missed), the eval builtin raises before any side effect;
               discard the context and re-run tree-walked — not counted as
               a second execution, since it replays the same program *)
            match run_with (fun ctx -> ignore (Compile.run cp ctx)) with
            | exception Value.Deopt_to_tree -> run_with tree_run
            | r -> r)
      in
      if ctx.Value.ihits > 0 then
        ignore (Atomic.fetch_and_add Value.ic_hits ctx.Value.ihits);
      let fbits = Value.fired_bits ctx in
      let tbits = Value.touched_bits ctx in
      (* the representative's own result rebuilds real [Quirk.Set.t]s — once
         per actual execution, this is the report boundary; class members
         inherit through [share] without re-materialising anything *)
      let ex_fired = lazy (Quirk.Bits.to_set fbits) in
      let ex_touched = lazy (Quirk.Bits.to_set tbits) in
      let ex =
        {
          ex_result =
            {
              r_parsed = true;
              r_parse_error = None;
              r_status = status;
              r_output = Buffer.contents ctx.Value.out;
              r_fuel_used = ctx.Value.fuel_cap - ctx.Value.fuel;
              r_fired = Quirk.Set.union parse_fired (Lazy.force ex_fired);
              r_touched = Quirk.Set.union parse_fired (Lazy.force ex_touched);
              r_coverage =
                Option.map
                  (fun c -> Coverage.summarize c prog)
                  ctx.Value.coverage;
            };
          ex_quirks = quirks;
          ex_qbits = (ctx.Value.q_lo, ctx.Value.q_hi);
          ex_fbits = fbits;
          ex_tbits = tbits;
          ex_fired;
          ex_touched;
        }
      in
      (* the result captured everything it needs as immutable copies; the
         ctx's buffer and scope table go back to the domain's scratch *)
      Scratch.release ctx;
      ex

let run ?quirks ?parse_opts ?strict ?fuel ?coverage ?resolve ?reach
    ?specialize ?frontend (src : string) : result =
  (run_exec ?quirks ?parse_opts ?strict ?fuel ?coverage ?resolve ?reach
     ?specialize ?frontend src)
    .ex_result

(* Does an engine carrying [quirks] belong to [ex]'s behavioural
   equivalence class? True iff it agrees with the representative at every
   checkpoint the representative's execution consulted — then every
   conformance decision resolves the same way, control flow is identical,
   and (in particular) exactly the same checkpoints get consulted, so the
   verdict is self-validating: no member can secretly reach a checkpoint
   outside [ex_tbits]. The decision is a handful of integer instructions
   on the packed words — profiling shows class matching is the hottest
   set algebra in a campaign. *)
let shares_class_bits ~(qbits : Quirk.Bits.t) (ex : exec) : bool =
  Quirk.Bits.equal
    (Quirk.Bits.inter qbits ex.ex_tbits)
    (Quirk.Bits.inter ex.ex_qbits ex.ex_tbits)

(* Set-typed convenience over [shares_class_bits] (packs and delegates). *)
let shares_class ~quirks (ex : exec) : bool =
  shares_class_bits ~qbits:(Quirk.Bits.of_set quirks) ex

(* The class member's result: execution is inherited verbatim; only the
   parse-stage quirk filter is per-member ([frontend] sank parse quirks
   unfiltered, and members of one parse group may own different subsets).
   A quirk both sunk at parse time and fired during execution is on for
   every member (it is in the class key), so the union loses nothing.
   The common case — the front end sank no parse-stage quirks at all, so
   the representative's and every member's parse filter are both empty —
   returns the representative's result verbatim, allocating nothing; with
   ~100 testbeds inheriting per shared execution this is the sharing
   layer's hottest path. *)
let share ~(frontend : frontend) ~quirks (ex : exec) : result =
  if Quirk.Set.is_empty frontend.fe_fired then ex.ex_result
  else
    let parse_fired = Quirk.Set.inter frontend.fe_fired quirks in
    {
      ex.ex_result with
      r_fired = Quirk.Set.union parse_fired (Lazy.force ex.ex_fired);
      r_touched = Quirk.Set.union parse_fired (Lazy.force ex.ex_touched);
    }

(* Convenience for tests and examples: run on the standard-conforming
   reference engine and return printed output. *)
let output_of ?quirks ?strict ?fuel (src : string) : string =
  (run ?quirks ?strict ?fuel src).r_output
