(** Top-level engine entry point: source in, classified result out.

    [run] is what one "testbed" executes: it builds a fresh realm, parses
    with the engine's front-end options, evaluates with the engine's quirk
    set under a fuel budget, and classifies the outcome in the vocabulary
    of the paper's Figure 5. *)

type status =
  | Sts_normal
  | Sts_uncaught of string * string  (** error name, message *)
  | Sts_crash of string              (** simulated engine crash *)
  | Sts_timeout                      (** fuel exhausted *)

type result = {
  r_parsed : bool;
  r_parse_error : string option;
  r_status : status;
  r_output : string;        (** everything [print] emitted *)
  r_fuel_used : int;        (** execution cost, the wall-clock stand-in *)
  r_fired : Quirk.Set.t;    (** ground-truth quirks whose deviant path ran *)
  r_touched : Quirk.Set.t;
      (** quirk checkpoints the run {e consulted}, active or not — a
          superset of [r_fired], and the key of the execution-sharing
          equivalence classes (see {!shares_class}) *)
  r_coverage : Coverage.summary option;
}

val status_to_string : status -> string

val default_fuel : int

(** Cumulative interpreter executions across all domains — the
    execution-side analogue of [Jsparse.Parser.parse_count]. Parse
    failures and results inherited through {!share} do not count, so a
    before/after delta measures exactly how many real evaluations a
    campaign (or the sharing layer) performed. *)
val run_count : unit -> int

(** Fold [n] executions performed in another process (a forked campaign
    worker, whose counters die with it) into {!run_count}; the campaign
    coordinator folds per-task deltas so statistics are identical with
    and without process isolation. No-op for [n <= 0]. *)
val add_runs : int -> unit

(** Is slot-compiled execution ({!Compile}) on by default? True unless the
    COMFORT_NO_RESOLVE environment variable is set to a non-empty value —
    the compile-stage analogue of COMFORT_NO_SHARE. *)
val resolve_by_default : unit -> bool

(** Is the static reachability analysis ({!Analysis.Reach}) consulted by
    default? True unless COMFORT_NO_REACH is set to a non-empty value. *)
val reach_by_default : unit -> bool

(** Is quirk-specialised execution (copy-on-write realms, per-cell
    compiled closures, inline caches) on by default? True unless
    COMFORT_NO_SPECIALIZE is set to a non-empty value. *)
val specialize_by_default : unit -> bool

(** Is per-domain execution-scratch recycling on? True unless COMFORT_GC
    is set to "off" or "0" — the escape hatch that restores the exact
    allocation behaviour of non-recycling builds (results are
    bit-identical either way). Minor-heap widening was also tried under
    this flag and measured as a ~10% regression on the campaign bench;
    the default heap geometry is deliberately untouched (see
    EXPERIMENTS.md). *)
val gc_by_default : unit -> bool

(** Whole-pipeline campaign profiler. Disabled by default (a disabled
    probe pays one ref read); when [enabled] is set, every probe adds its
    wall-clock duration and its [Gc.allocated_bytes] delta to the
    corresponding slot.

    Two layers: {e pipeline stages} (generate, screen, sweep, vote, attr,
    reduce, fold) partition the campaign's wall clock — [time] attributes
    to the outermost active stage only (per-domain re-entrancy flag), so
    at [jobs = 1] their sum is a no-double-counting lower bound on wall.
    {e Interpreter substages} (parse, compile, realm-install, exec) nest
    inside pipeline stages, always record, and are reported as a
    separate layer. At [jobs > 1] worker domains accumulate concurrently,
    so stage sums measure CPU time, which may exceed wall. *)
module Stage : sig
  val enabled : bool ref
  val reset : unit -> unit

  (** (parse, compile, realm-install, exec) nanosecond totals — the
      interpreter-substage view, kept for the benchmark harness *)
  val read : unit -> int * int * int * int

  type slot

  (** The pipeline stages, in campaign order. *)

  val generate : slot  (** LM program generation + mutation *)

  val screen : slot  (** reference-engine screening of raw cases *)

  val sweep : slot
  (** the 102-testbed sweep: frontend cache, class discovery probing,
      execution sharing — the interpreter substages mostly nest here *)

  val vote : slot  (** per-mode majority vote + 2t rule + deviation build *)

  val attr : slot  (** bug-filter classification + causal attribution *)

  val reduce : slot  (** test-case reduction of surfaced discoveries *)

  val fold : slot  (** report folding, timeline, checkpoint saves *)

  (** Run [f] attributed to a pipeline stage. Re-entrant calls (a stage
      probe inside an active stage probe, on the same domain) do not
      record — outermost wins. *)
  val time : slot -> (unit -> 'a) -> 'a

  (** (name, wall ns, allocated bytes) rows for the pipeline layer, in
      campaign order. *)
  val pipeline : unit -> (string * int * int) list

  (** Same rows for the interpreter-substage layer. *)
  val substages : unit -> (string * int * int) list
end

(** Derive front-end options from a quirk set (parser-level bugs live in
    the front end, so a quirk profile is a single source of truth). *)
val parse_opts_of :
  base:Jsparse.Parser.options -> Quirk.Set.t -> Jsparse.Parser.options

(** The outcome of one front-end pass, separable from execution so that
    testbeds whose effective parse options and mode coincide can share a
    single parse (the campaign's per-case front-end cache). *)
type frontend = {
  fe_program : (Jsast.Ast.program, string * int) Stdlib.result;
      (** parsed program, or (message, line) of the syntax error *)
  fe_fired : Quirk.Set.t;
      (** parse-stage quirks sunk by the front end, {e unfiltered};
          {!run} intersects them with the executing engine's quirk set *)
  fe_compiled : (bool * bool * int, Compile.t) Hashtbl.t;
      (** slot-compiled programs cached per front end, keyed by
          (strict mode, reach enabled, specialisation cell key —
          [Compile.cell_key], -1 for the generic form); testbeds sharing
          a front end share the compilations *)
  fe_reach : Quirk.Set.t Lazy.t;
      (** static over-approximation of every quirk checkpoint any
          execution of this front end can consult
          ({!Analysis.Reach.checkpoints} joined with the parse-stage
          [fe_fired]); forced on first use, shared by all testbeds of the
          parse group *)
  fe_reach_bits : Quirk.Bits.t Lazy.t;
      (** [fe_reach] packed into machine words for the execution-sharing
          cache's cell computation *)
  fe_strict_sensitive : bool;
      (** the parse reached a construct whose outcome depends on the
          ambient strict flag ({!Jsparse.Parser.options}'
          [strict_sensitive_sink]). When [false] on a sloppy parse, a
          [force_strict] parse of the same source is guaranteed
          identical, so the front end can also serve strict-mode
          testbeds (the executor re-applies the mode via the compiled
          program's strict key). *)
}

(** Parse once with the effective options derived from [parse_opts] and
    [quirks]. The result may be passed to {!run} for any engine whose
    effective options and mode are identical. [reach_strict] (default
    [strict]) sets the mode assumed by the reach analysis — pass [true]
    when the front end may be shared with strict-mode testbeds, since
    the strict reach set is a superset of the sloppy one. *)
val parse_frontend :
  ?quirks:Quirk.Set.t ->
  ?parse_opts:Jsparse.Parser.options ->
  ?strict:bool ->
  ?reach_strict:bool ->
  string ->
  frontend

(** The front end's static checkpoint reach set (forces [fe_reach]).
    Sound: for every execution of this front end on any testbed of its
    parse group, [r_touched] is a subset of [reach_set fe]. *)
val reach_set : frontend -> Quirk.Set.t

(** Execute a program.
    @param quirks     the engine's bug set (empty = conforming reference)
    @param parse_opts front-end profile (ES edition gates)
    @param strict     run as a strict-mode testbed
    @param coverage   record statement/branch/function coverage
    @param resolve    execute slot-compiled ({!Compile}); defaults to
                      {!resolve_by_default}. Results are bit-for-bit
                      identical either way — this only selects the engine
                      core
    @param reach      let the compiler constant-fold checkpoint
                      consultations the static analysis proves
                      unreachable (with a deopt-to-tree escape hatch);
                      defaults to {!reach_by_default}. Results are
                      bit-for-bit identical either way
    @param specialize execute on the quirk-specialised fast path:
                      copy-on-write realms, per-cell compiled closures
                      with baked-in checkpoint answers, and inline caches
                      at compiled property sites; defaults to
                      {!specialize_by_default}. Results are bit-for-bit
                      identical either way
    @param frontend   a pre-parsed front end to reuse (skips this run's
                      own parse); must have been produced with the same
                      effective options and strictness *)
val run :
  ?quirks:Quirk.Set.t ->
  ?parse_opts:Jsparse.Parser.options ->
  ?strict:bool ->
  ?fuel:int ->
  ?coverage:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  ?frontend:frontend ->
  string ->
  result

(** One interpreter execution packaged for sharing: the representative's
    result plus the quirk set it ran under and its execution-stage
    fired/touched sets (the top-level parse stage is per-member and lives
    in {!frontend}). The interpreter is deterministic given (program,
    mode, effective parse options, answers at quirk checkpoints), which is
    what makes an [exec] transferable across engines. *)
type exec = {
  ex_result : result;       (** the representative's own full result *)
  ex_quirks : Quirk.Set.t;  (** quirk set the representative ran under *)
  ex_qbits : Quirk.Bits.t;  (** [ex_quirks] packed into machine words *)
  ex_fbits : Quirk.Bits.t;
      (** execution-stage fired set, packed into machine words *)
  ex_tbits : Quirk.Bits.t;
      (** execution-stage touched set, packed into machine words — the
          execution-sharing class key ({!shares_class_bits}) *)
  ex_fired : Quirk.Set.t Lazy.t;
      (** [ex_fbits] rebuilt as a [Quirk.Set.t], forced only at report
          boundaries (a {!share} that must re-filter parse quirks, tests) *)
  ex_touched : Quirk.Set.t Lazy.t;  (** [ex_tbits] as a [Quirk.Set.t] *)
}

(** Like {!run}, but keep the sharing evidence. [run] is [ex_result]. *)
val run_exec :
  ?quirks:Quirk.Set.t ->
  ?parse_opts:Jsparse.Parser.options ->
  ?strict:bool ->
  ?fuel:int ->
  ?coverage:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  ?frontend:frontend ->
  string ->
  exec

(** Does an engine carrying [quirks] belong to [ex]'s behavioural
    equivalence class? True iff [quirks] agrees with [ex_quirks] at every
    checkpoint in [ex_touched]. The check is self-validating: agreeing on
    every consulted checkpoint forces identical control flow, so a member
    cannot reach a checkpoint the representative did not touch. Callers
    must also match the parse group (effective front-end options + mode)
    and the fuel budget — see [Engines.Engine.Exec]. *)
val shares_class : quirks:Quirk.Set.t -> exec -> bool

(** {!shares_class} on packed quirk words ([Quirk.Bits.of_set quirks]) —
    the same decision in a handful of integer instructions, for the
    execution-sharing cache's hot path. *)
val shares_class_bits : qbits:Quirk.Bits.t -> exec -> bool

(** The result a class member inherits from its representative: execution
    verbatim, with only the parse-stage quirk filter recomputed for the
    member's own quirk set. Equals what {!run} would have produced, field
    for field. *)
val share : frontend:frontend -> quirks:Quirk.Set.t -> exec -> result

(** Convenience: printed output of a run on the conforming engine. *)
val output_of : ?quirks:Quirk.Set.t -> ?strict:bool -> ?fuel:int -> string -> string
