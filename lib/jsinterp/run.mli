(** Top-level engine entry point: source in, classified result out.

    [run] is what one "testbed" executes: it builds a fresh realm, parses
    with the engine's front-end options, evaluates with the engine's quirk
    set under a fuel budget, and classifies the outcome in the vocabulary
    of the paper's Figure 5. *)

type status =
  | Sts_normal
  | Sts_uncaught of string * string  (** error name, message *)
  | Sts_crash of string              (** simulated engine crash *)
  | Sts_timeout                      (** fuel exhausted *)

type result = {
  r_parsed : bool;
  r_parse_error : string option;
  r_status : status;
  r_output : string;        (** everything [print] emitted *)
  r_fuel_used : int;        (** execution cost, the wall-clock stand-in *)
  r_fired : Quirk.Set.t;    (** ground-truth quirks whose deviant path ran *)
  r_coverage : Coverage.summary option;
}

val status_to_string : status -> string

val default_fuel : int

(** Derive front-end options from a quirk set (parser-level bugs live in
    the front end, so a quirk profile is a single source of truth). *)
val parse_opts_of :
  base:Jsparse.Parser.options -> Quirk.Set.t -> Jsparse.Parser.options

(** The outcome of one front-end pass, separable from execution so that
    testbeds whose effective parse options and mode coincide can share a
    single parse (the campaign's per-case front-end cache). *)
type frontend = {
  fe_program : (Jsast.Ast.program, string * int) Stdlib.result;
      (** parsed program, or (message, line) of the syntax error *)
  fe_fired : Quirk.Set.t;
      (** parse-stage quirks sunk by the front end, {e unfiltered};
          {!run} intersects them with the executing engine's quirk set *)
}

(** Parse once with the effective options derived from [parse_opts] and
    [quirks]. The result may be passed to {!run} for any engine whose
    effective options and mode are identical. *)
val parse_frontend :
  ?quirks:Quirk.Set.t ->
  ?parse_opts:Jsparse.Parser.options ->
  ?strict:bool ->
  string ->
  frontend

(** Execute a program.
    @param quirks     the engine's bug set (empty = conforming reference)
    @param parse_opts front-end profile (ES edition gates)
    @param strict     run as a strict-mode testbed
    @param coverage   record statement/branch/function coverage
    @param frontend   a pre-parsed front end to reuse (skips this run's
                      own parse); must have been produced with the same
                      effective options and strictness *)
val run :
  ?quirks:Quirk.Set.t ->
  ?parse_opts:Jsparse.Parser.options ->
  ?strict:bool ->
  ?fuel:int ->
  ?coverage:bool ->
  ?frontend:frontend ->
  string ->
  result

(** Convenience: printed output of a run on the conforming engine. *)
val output_of : ?quirks:Quirk.Set.t -> ?strict:bool -> ?fuel:int -> string -> string
