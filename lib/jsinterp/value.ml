(* Runtime value and object model of the reference engine.

   Everything the interpreter, the coercion layer and the builtins share is
   defined here, including the execution context [ctx], to avoid a module
   cycle: builtins need to call back into the evaluator (e.g. [sort] calling
   a JS comparator), which is wired through [ctx.call_hook] at start-up. *)

type value =
  | Undefined
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Obj of obj

and obj = {
  oid : int;
  mutable oclass : string;
      (** [[Class]]-like tag: "Object", "Array", "Function", "String",
          "Number", "Boolean", "RegExp", "Error", "JSON", "Math",
          "TypedArray", "DataView", "Arguments" *)
  mutable proto : value;
  mutable props : (string * prop) list;  (** insertion-ordered named props *)
  mutable extensible : bool;
  mutable call : callable option;
  mutable arr : arr option;              (** Array / TypedArray storage *)
  mutable prim : value option;           (** wrapped primitive *)
  mutable regex : regex_data option;
  mutable dataview : bytes option;
}

and prop = {
  mutable v : value;
  mutable writable : bool;
  mutable enumerable : bool;
  mutable configurable : bool;
  mutable getter : value option; (** accessor support for defineProperty *)
}

and callable =
  | Js_closure of closure
  | Compiled of compiled
  | Native of string * int * (ctx -> value -> value list -> value)
      (** name, arity ([length] property), implementation *)

and compiled = {
  co_name : string;
  co_params : string list;
      (** kept for [Function.prototype.toString] and arity reporting *)
  co_call : ctx -> value -> value list -> value;
      (** pre-compiled body: this, args — produced by [Compile] *)
}

and closure = {
  cl_name : string;
  cl_params : string list;
  cl_body : Jsast.Ast.stmt list;
  cl_scope : scope;
  cl_this : value option;  (** [Some v] for arrows: lexically captured *)
  cl_strict : bool;
  cl_binding : value ref option;
      (** named function expressions bind their own name; kept so the
          [Q_named_funcexpr_binding_mutable] quirk can corrupt it *)
  cl_node_id : int;
      (** AST node id of the defining Func/Arrow/Func_decl, for function
          coverage (recorded when the body first executes) *)
}

and scope = {
  bindings : (string, value ref) Hashtbl.t;
  parent : scope option;
  mutable frozen_names : string list;
      (** immutable bindings (named function expressions); assignment is a
          silent no-op in sloppy mode, TypeError in strict — unless the
          [Q_named_funcexpr_binding_mutable] quirk is active *)
}

and typed_kind = U8 | U8C | I8 | U16 | I16 | U32 | I32 | F32 | F64

and arr = {
  mutable elems : value array;   (** dense storage; [Undefined] fills holes *)
  mutable alen : int;
  ty : typed_kind option;        (** [None] = ordinary Array *)
  mutable length_writable : bool;
  mutable min_written : int;     (** lowest index ever stored; drives the
                                     Hermes relocation cost model *)
}

and regex_data = {
  rx_source : string;
  rx_flags : string;
  rx_prog : Regex.prog;
}

and ctx = {
  mutable global : obj;
  global_scope : scope;
  quirks : Quirk.Set.t;
  parse_opts : Jsparse.Parser.options;
  mutable fuel : int;            (** remaining execution budget *)
  fuel_cap : int;
  out : Buffer.t;
  mutable fired : Quirk.Set.t;   (** quirks whose deviant path executed *)
  mutable touched : Quirk.Set.t;
      (** quirk checkpoints *consulted* during execution, active or not —
          a superset of [fired]. Two engines whose quirk sets agree on a
          run's touched set replay the run identically, which is what the
          campaign's execution-sharing layer keys on *)
  mutable call_hook : ctx -> value -> value -> value list -> value;
      (** function value, this, args — set by [Interp] *)
  mutable eval_hook : ctx -> scope -> bool -> string -> value;
      (** scope, strict, source — set by [Interp] *)
  coverage : Coverage.t option;
  mutable loop_trip : int;       (** iterations of the innermost loop; feeds
                                     the optimizer-quirk cost model *)
  mutable strconcat_drop_armed : bool;
  mutable protos : (string * obj) list;
      (** intrinsic prototypes ("Object", "String", "Array", …) installed by
          [Builtins.install]; consulted for primitive member access *)
  mutable depth : int;  (** JS call depth, for the stack-size limit *)
  mutable cur_this : value;
      (** [this] of the innermost active function (or the global object):
          kept current by [call_function] / [exec_in_scope] so that [this]
          and arrow creation need no scope-chain walk *)
  mutable slotted : bool;
      (** a slot-compiled program is executing; [eval] must bail out to the
          tree-walker ([Deopt_to_tree]) because eval code can mutate the
          global binding map behind the compiled program's slots *)
  mutable specials_shadowed : bool;
      (** some executed program declares a binding named [undefined], [NaN]
          or [Infinity]; until then those identifiers evaluate to their
          constants without any scope-chain walk *)
}

let proto_of ctx name =
  match List.assoc_opt name ctx.protos with
  | Some o -> Obj o
  | None -> Null

(* JS exceptions carry the thrown value. *)
exception Js_throw of value

(* Simulated engine crash (segfault analogue); aborts the test run. *)
exception Engine_crash of string

(* Execution budget exhausted; classified as a timeout by the harness. *)
exception Out_of_fuel

(* Raised (by the [eval] builtin) when a slot-compiled execution hits a
   dynamic feature the compiled representation cannot honour; [Run] catches
   it, discards the context, and re-executes the program tree-walked. *)
exception Deopt_to_tree

(* Atomic: objects are allocated concurrently by campaign worker domains. *)
let obj_counter = Atomic.make 0

let make_obj ?(oclass = "Object") ?(proto = Null) () =
  {
    oid = Atomic.fetch_and_add obj_counter 1 + 1;
    oclass;
    proto;
    props = [];
    extensible = true;
    call = None;
    arr = None;
    prim = None;
    regex = None;
    dataview = None;
  }

let mkprop ?(writable = true) ?(enumerable = true) ?(configurable = true) v =
  { v; writable; enumerable; configurable; getter = None }

let type_of = function
  | Undefined -> "undefined"
  | Null -> "object"
  | Bool _ -> "boolean"
  | Num _ -> "number"
  | Str _ -> "string"
  | Obj o -> if o.call <> None then "function" else "object"

let is_callable = function Obj { call = Some _; _ } -> true | _ -> false

(* Every conformance-relevant decision point funnels through here (directly
   or via [fire]); recording the consultation — whether or not the quirk is
   active — is what makes the touched set a sound execution-sharing key. *)
let quirk_on ctx q =
  ctx.touched <- Quirk.Set.add q ctx.touched;
  Quirk.Set.mem q ctx.quirks

(* Check-and-record: returns whether the quirk is active, and if so marks it
   as fired. All deviation points in the interpreter and builtins go through
   this so that campaign scoring can attribute observed deviations to
   ground-truth bugs. *)
let fire ctx q =
  if quirk_on ctx q then begin
    ctx.fired <- Quirk.Set.add q ctx.fired;
    true
  end
  else false

let burn ctx n =
  ctx.fuel <- ctx.fuel - n;
  if ctx.fuel < 0 then raise Out_of_fuel

(* --- property list helpers (insertion-ordered assoc) --- *)

let find_own (o : obj) (k : string) : prop option = List.assoc_opt k o.props

let set_own (o : obj) (k : string) (p : prop) =
  if List.mem_assoc k o.props then
    o.props <- List.map (fun (k', p') -> if k' = k then (k, p) else (k', p')) o.props
  else o.props <- o.props @ [ (k, p) ]

let remove_own (o : obj) (k : string) =
  o.props <- List.filter (fun (k', _) -> k' <> k) o.props

let own_keys (o : obj) : string list = List.map fst o.props

(* Canonical array-index interpretation of a property key. *)
let array_index_of_key (k : string) : int option =
  match int_of_string_opt k with
  | Some i when i >= 0 && string_of_int i = k -> Some i
  | _ -> None

let typed_kind_name = function
  | U8 -> "Uint8Array"
  | U8C -> "Uint8ClampedArray"
  | I8 -> "Int8Array"
  | U16 -> "Uint16Array"
  | I16 -> "Int16Array"
  | U32 -> "Uint32Array"
  | I32 -> "Int32Array"
  | F32 -> "Float32Array"
  | F64 -> "Float64Array"
