(* Runtime value and object model of the reference engine.

   Everything the interpreter, the coercion layer and the builtins share is
   defined here, including the execution context [ctx], to avoid a module
   cycle: builtins need to call back into the evaluator (e.g. [sort] calling
   a JS comparator), which is wired through [ctx.call_hook] at start-up. *)

type value =
  | Undefined
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Obj of obj

and obj = {
  oid : int;
  mutable oclass : string;
      (** [[Class]]-like tag: "Object", "Array", "Function", "String",
          "Number", "Boolean", "RegExp", "Error", "JSON", "Math",
          "TypedArray", "DataView", "Arguments" *)
  mutable proto : value;
  mutable props : (string * prop) list;  (** insertion-ordered named props *)
  mutable extensible : bool;
  mutable call : callable option;
  mutable arr : arr option;              (** Array / TypedArray storage *)
  mutable prim : value option;           (** wrapped primitive *)
  mutable regex : regex_data option;
  mutable dataview : bytes option;
  mutable cow : int;
      (** copy-on-write state: 0 = ordinary object, 1 = realm-template
          object shared between executions (first mutation must journal a
          pre-image, see [cow_save]), 2 = template object already journaled
          by the execution in flight on this domain *)
  mutable version : int;
      (** shape stamp: bumped whenever the property *layout* changes (add /
          remove / redefine / rollback) — never on a plain [p.v] store.
          Inline caches key on [(identity, version)], so a bump is what
          invalidates them; the stamp only ever grows *)
}

and prop = {
  mutable v : value;
  mutable writable : bool;
  mutable enumerable : bool;
  mutable configurable : bool;
  mutable getter : value option; (** accessor support for defineProperty *)
}

and callable =
  | Js_closure of closure
  | Compiled of compiled
  | Native of string * int * (ctx -> value -> value list -> value)
      (** name, arity ([length] property), implementation *)

and compiled = {
  co_name : string;
  co_params : string list;
      (** kept for [Function.prototype.toString] and arity reporting *)
  co_call : ctx -> value -> value list -> value;
      (** pre-compiled body: this, args — produced by [Compile] *)
}

and closure = {
  cl_name : string;
  cl_params : string list;
  cl_body : Jsast.Ast.stmt list;
  cl_scope : scope;
  cl_this : value option;  (** [Some v] for arrows: lexically captured *)
  cl_strict : bool;
  cl_binding : value ref option;
      (** named function expressions bind their own name; kept so the
          [Q_named_funcexpr_binding_mutable] quirk can corrupt it *)
  cl_node_id : int;
      (** AST node id of the defining Func/Arrow/Func_decl, for function
          coverage (recorded when the body first executes) *)
}

and scope = {
  bindings : (string, value ref) Hashtbl.t;
  parent : scope option;
  mutable frozen_names : string list;
      (** immutable bindings (named function expressions); assignment is a
          silent no-op in sloppy mode, TypeError in strict — unless the
          [Q_named_funcexpr_binding_mutable] quirk is active *)
}

and typed_kind = U8 | U8C | I8 | U16 | I16 | U32 | I32 | F32 | F64

and arr = {
  mutable elems : value array;   (** dense storage; [Undefined] fills holes *)
  mutable alen : int;
  ty : typed_kind option;        (** [None] = ordinary Array *)
  mutable length_writable : bool;
  mutable min_written : int;     (** lowest index ever stored; drives the
                                     Hermes relocation cost model *)
}

and regex_data = {
  rx_source : string;
  rx_flags : string;
  rx_prog : Regex.prog;
}

and ctx = {
  mutable global : obj;
  global_scope : scope;
  quirks : Quirk.Set.t;
  parse_opts : Jsparse.Parser.options;
  mutable fuel : int;            (** remaining execution budget *)
  fuel_cap : int;
  out : Buffer.t;
  q_lo : int;
  q_hi : int;
      (** [quirks] packed into machine words ([Quirk.Bits] layout), so the
          per-checkpoint membership test is one [land] *)
  mutable f_lo : int;
  mutable f_hi : int;
      (** quirks whose deviant path executed, as packed words *)
  mutable t_lo : int;
  mutable t_hi : int;
      (** quirk checkpoints *consulted* during execution, active or not —
          a superset of the fired words. Two engines whose quirk sets agree
          on a run's touched set replay the run identically, which is what
          the campaign's execution-sharing layer keys on. Packed words
          rather than [Quirk.Set.t]: checkpoints sit on the interpreter's
          hot path, and a balanced-tree [Set.add] per consultation was the
          single largest allocation source a campaign profile showed;
          [Run] rebuilds the set form once, at the report boundary *)
  mutable call_hook : ctx -> value -> value -> value list -> value;
      (** function value, this, args — set by [Interp] *)
  mutable eval_hook : ctx -> scope -> bool -> string -> value;
      (** scope, strict, source — set by [Interp] *)
  coverage : Coverage.t option;
  mutable loop_trip : int;       (** iterations of the innermost loop; feeds
                                     the optimizer-quirk cost model *)
  mutable strconcat_drop_armed : bool;
  mutable protos : (string * obj) list;
      (** intrinsic prototypes ("Object", "String", "Array", …) installed by
          [Builtins.install]; consulted for primitive member access *)
  mutable depth : int;  (** JS call depth, for the stack-size limit *)
  mutable cur_this : value;
      (** [this] of the innermost active function (or the global object):
          kept current by [call_function] / [exec_in_scope] so that [this]
          and arrow creation need no scope-chain walk *)
  mutable slotted : bool;
      (** a slot-compiled program is executing; [eval] must bail out to the
          tree-walker ([Deopt_to_tree]) because eval code can mutate the
          global binding map behind the compiled program's slots *)
  mutable specials_shadowed : bool;
      (** some executed program declares a binding named [undefined], [NaN]
          or [Infinity]; until then those identifiers evaluate to their
          constants without any scope-chain walk *)
  ic_gen : int;
      (** execution generation stamp for the compiled inline caches: an IC
          entry is valid only for the execution that filled it, so every
          execution starts cold and per-case hit counts are deterministic
          regardless of how executions are scheduled across domains *)
  mutable ihits : int;
      (** inline-cache hits of this execution; flushed into the process-wide
          [ic_hits] tally when the run completes (a plain field so the hot
          path never touches an atomic) *)
}

let proto_of ctx name =
  match List.assoc_opt name ctx.protos with
  | Some o -> Obj o
  | None -> Null

(* JS exceptions carry the thrown value. *)
exception Js_throw of value

(* Simulated engine crash (segfault analogue); aborts the test run. *)
exception Engine_crash of string

(* Execution budget exhausted; classified as a timeout by the harness. *)
exception Out_of_fuel

(* Raised (by the [eval] builtin) when a slot-compiled execution hits a
   dynamic feature the compiled representation cannot honour; [Run] catches
   it, discards the context, and re-executes the program tree-walked. *)
exception Deopt_to_tree

(* Atomic: objects are allocated concurrently by campaign worker domains. *)
let obj_counter = Atomic.make 0

let make_obj ?(oclass = "Object") ?(proto = Null) () =
  {
    oid = Atomic.fetch_and_add obj_counter 1 + 1;
    oclass;
    proto;
    props = [];
    extensible = true;
    call = None;
    arr = None;
    prim = None;
    regex = None;
    dataview = None;
    cow = 0;
    version = 0;
  }

let mkprop ?(writable = true) ?(enumerable = true) ?(configurable = true) v =
  { v; writable; enumerable; configurable; getter = None }

(* --- copy-on-write journal ---------------------------------------------

   Realm templates (see [Realm]) are shared between every execution on a
   domain instead of being deep-copied per run. Soundness: the first
   mutation of a template object journals a pre-image of all its mutable
   state (the lazy "clone" of the COW scheme — paid only for objects a
   program actually writes, which for typical generated programs is zero),
   and [cow_rollback] — run by [Run] after every execution — restores the
   pre-images so the next execution sees a pristine template.

   The journal is domain-local: executions on one domain are sequential,
   and each domain shares only its own template, so entries never cross
   domains. [version] is deliberately *not* restored — rollback bumps it
   instead, so an inline cache filled against the mutated layout can never
   validate against the restored one. *)

type cow_prop_save = {
  cps_prop : prop;
  cps_v : value;
  cps_writable : bool;
  cps_enumerable : bool;
  cps_configurable : bool;
  cps_getter : value option;
}

type cow_arr_save = {
  cas_arr : arr;
  cas_elems : value array; (* a copy *)
  cas_alen : int;
  cas_length_writable : bool;
  cas_min_written : int;
}

type cow_save = {
  cs_obj : obj;
  cs_oclass : string;
  cs_proto : value;
  cs_props : (string * prop) list;
  cs_prop_saves : cow_prop_save list;
  cs_extensible : bool;
  cs_call : callable option;
  cs_arr : cow_arr_save option;
  cs_prim : value option;
  cs_regex : regex_data option;
  cs_dataview : bytes option; (* a copy *)
}

let cow_journal : cow_save list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Process-wide count of lazily journaled template objects ("COW clones");
   campaigns report the delta as [cp_cow_clones]. *)
let cow_clones = Atomic.make 0
let cow_count () = Atomic.get cow_clones

(* Fold a forked campaign worker's COW-clone delta into this process's
   count (see [Run.add_runs]). *)
let add_cow n = if n > 0 then ignore (Atomic.fetch_and_add cow_clones n)

let cow_save (o : obj) : unit =
  o.cow <- 2;
  Atomic.incr cow_clones;
  let j = Domain.DLS.get cow_journal in
  j :=
    {
      cs_obj = o;
      cs_oclass = o.oclass;
      cs_proto = o.proto;
      cs_props = o.props;
      cs_prop_saves =
        List.map
          (fun (_, p) ->
            {
              cps_prop = p;
              cps_v = p.v;
              cps_writable = p.writable;
              cps_enumerable = p.enumerable;
              cps_configurable = p.configurable;
              cps_getter = p.getter;
            })
          o.props;
      cs_extensible = o.extensible;
      cs_call = o.call;
      cs_arr =
        Option.map
          (fun a ->
            {
              cas_arr = a;
              cas_elems = Array.copy a.elems;
              cas_alen = a.alen;
              cas_length_writable = a.length_writable;
              cas_min_written = a.min_written;
            })
          o.arr;
      cs_prim = o.prim;
      cs_regex = o.regex;
      cs_dataview = Option.map Bytes.copy o.dataview;
    }
    :: !j

(* The write barrier. Every mutation point of the object model funnels
   through here (or through [set_own]/[remove_own], which do) before
   touching a field. Ordinary objects pay one integer compare. *)
let barrier (o : obj) : unit = if o.cow = 1 then cow_save o

let cow_rollback () : unit =
  let j = Domain.DLS.get cow_journal in
  match !j with
  | [] -> ()
  | entries ->
      List.iter
        (fun s ->
          let o = s.cs_obj in
          o.oclass <- s.cs_oclass;
          o.proto <- s.cs_proto;
          List.iter
            (fun ps ->
              let p = ps.cps_prop in
              p.v <- ps.cps_v;
              p.writable <- ps.cps_writable;
              p.enumerable <- ps.cps_enumerable;
              p.configurable <- ps.cps_configurable;
              p.getter <- ps.cps_getter)
            s.cs_prop_saves;
          o.props <- s.cs_props;
          o.extensible <- s.cs_extensible;
          o.call <- s.cs_call;
          (match s.cs_arr with
          | Some a ->
              a.cas_arr.elems <- a.cas_elems;
              a.cas_arr.alen <- a.cas_alen;
              a.cas_arr.length_writable <- a.cas_length_writable;
              a.cas_arr.min_written <- a.cas_min_written;
              o.arr <- Some a.cas_arr
          | None -> o.arr <- None);
          o.prim <- s.cs_prim;
          o.regex <- s.cs_regex;
          o.dataview <- s.cs_dataview;
          o.version <- o.version + 1;
          o.cow <- 1)
        entries;
      j := []

(* Inline-cache hit counter (see [Compile]); campaigns report the delta as
   [cp_ic_hits]. Atomic so parallel campaigns count deterministically;
   executions accumulate in [ctx.ihits] and flush once on completion. *)
let ic_hits = Atomic.make 0
let ic_count () = Atomic.get ic_hits
let add_ic n = if n > 0 then ignore (Atomic.fetch_and_add ic_hits n)

(* Source of [ctx.ic_gen] stamps: globally unique, so an inline cache can
   never confuse two executions even across domains. *)
let ic_gen_counter = Atomic.make 0

let type_of = function
  | Undefined -> "undefined"
  | Null -> "object"
  | Bool _ -> "boolean"
  | Num _ -> "number"
  | Str _ -> "string"
  | Obj o -> if o.call <> None then "function" else "object"

let is_callable = function Obj { call = Some _; _ } -> true | _ -> false

(* Every conformance-relevant decision point funnels through here (directly
   or via [fire]); recording the consultation — whether or not the quirk is
   active — is what makes the touched set a sound execution-sharing key.
   [Quirk.index] is a constant-constructor match, so the whole consultation
   is a handful of integer instructions and allocates nothing. *)
let quirk_on ctx q =
  let i = Quirk.index q in
  if i < 62 then begin
    let m = 1 lsl i in
    ctx.t_lo <- ctx.t_lo lor m;
    ctx.q_lo land m <> 0
  end
  else begin
    let m = 1 lsl (i - 62) in
    ctx.t_hi <- ctx.t_hi lor m;
    ctx.q_hi land m <> 0
  end

(* Check-and-record: returns whether the quirk is active, and if so marks it
   as fired. All deviation points in the interpreter and builtins go through
   this so that campaign scoring can attribute observed deviations to
   ground-truth bugs. *)
let fire ctx q =
  let i = Quirk.index q in
  if i < 62 then begin
    let m = 1 lsl i in
    ctx.t_lo <- ctx.t_lo lor m;
    if ctx.q_lo land m <> 0 then begin
      ctx.f_lo <- ctx.f_lo lor m;
      true
    end
    else false
  end
  else begin
    let m = 1 lsl (i - 62) in
    ctx.t_hi <- ctx.t_hi lor m;
    if ctx.q_hi land m <> 0 then begin
      ctx.f_hi <- ctx.f_hi lor m;
      true
    end
    else false
  end

(* Record a consultation whose answer the caller has baked in — the
   specialised compiler's checkpoint sites ([Compile.checkpoint]). *)
let touch ctx q =
  let i = Quirk.index q in
  if i < 62 then ctx.t_lo <- ctx.t_lo lor (1 lsl i)
  else ctx.t_hi <- ctx.t_hi lor (1 lsl (i - 62))

(* [touch] plus the fired attribution, for baked-in cell-member sites. *)
let touch_fire ctx q =
  let i = Quirk.index q in
  if i < 62 then begin
    let m = 1 lsl i in
    ctx.t_lo <- ctx.t_lo lor m;
    ctx.f_lo <- ctx.f_lo lor m
  end
  else begin
    let m = 1 lsl (i - 62) in
    ctx.t_hi <- ctx.t_hi lor m;
    ctx.f_hi <- ctx.f_hi lor m
  end

(* The packed-word views of a context's recording fields. *)
let fired_bits ctx : Quirk.Bits.t = (ctx.f_lo, ctx.f_hi)
let touched_bits ctx : Quirk.Bits.t = (ctx.t_lo, ctx.t_hi)

let burn ctx n =
  ctx.fuel <- ctx.fuel - n;
  if ctx.fuel < 0 then raise Out_of_fuel

(* --- property list helpers (insertion-ordered assoc) --- *)

let find_own (o : obj) (k : string) : prop option = List.assoc_opt k o.props

let set_own (o : obj) (k : string) (p : prop) =
  barrier o;
  o.version <- o.version + 1;
  if List.mem_assoc k o.props then
    o.props <- List.map (fun (k', p') -> if k' = k then (k, p) else (k', p')) o.props
  else o.props <- o.props @ [ (k, p) ]

let remove_own (o : obj) (k : string) =
  barrier o;
  o.version <- o.version + 1;
  o.props <- List.filter (fun (k', _) -> k' <> k) o.props

let own_keys (o : obj) : string list = List.map fst o.props

(* Canonical array-index interpretation of a property key. *)
let array_index_of_key (k : string) : int option =
  match int_of_string_opt k with
  | Some i when i >= 0 && string_of_int i = k -> Some i
  | _ -> None

let typed_kind_name = function
  | U8 -> "Uint8Array"
  | U8C -> "Uint8ClampedArray"
  | I8 -> "Int8Array"
  | U16 -> "Uint16Array"
  | I16 -> "Int16Array"
  | U32 -> "Uint32Array"
  | I32 -> "Int32Array"
  | F32 -> "Float32Array"
  | F64 -> "Float64Array"
