(* Recursive-descent parser for the JavaScript subset.

   The parser is parameterised by {!options} so that each simulated engine
   can exhibit its own front-end behaviour: older engines reject ES2015
   syntax outright, and some engines carry parser conformance bugs (e.g.
   accepting a [for] head with no body, the ChakraCore bug of Listing 7).

   The default options model a standard-conforming ES2019 front end; the
   same configuration is what the pipeline uses as its JSHint-substitute
   syntax oracle. *)

open Jsast
module B = Builder

exception Syntax_error of string * int (* message, line *)

type options = {
  accept_for_missing_body : bool;
      (** quirk: treat [for(head)] with no body as an empty loop *)
  accept_dup_params_strict : bool;
      (** quirk: no SyntaxError on duplicate params in strict mode *)
  accept_strict_delete_unqualified : bool;
      (** quirk: no SyntaxError on [delete x] in strict mode *)
  quirk_sink : string -> unit;
      (** called with the quirk name when a quirk-gated acceptance actually
          fires, so campaigns can attribute parse-stage deviations *)
  strict_sensitive_sink : unit -> unit;
      (** called whenever the parse reaches a construct whose outcome
          depends on the *ambient* strict flag (duplicate parameters,
          assignment to eval/arguments, [delete identifier]) — whether or
          not the parse is strict. If a sloppy parse never calls it, a
          [force_strict] parse of the same source is guaranteed
          identical, so front-end caches can share one parse across
          modes. *)
  reject_template_literals : bool;  (** pre-ES2015 front end *)
  reject_arrow_functions : bool;    (** pre-ES2015 front end *)
  reject_let_const : bool;          (** pre-ES2015 front end *)
  reject_for_of : bool;             (** pre-ES2015 front end *)
  reject_exponent_op : bool;        (** pre-ES2016 front end *)
  reject_regexp_sticky : bool;      (** pre-ES2015: flag [y] unsupported *)
}

let default_options =
  {
    accept_for_missing_body = false;
    accept_dup_params_strict = false;
    accept_strict_delete_unqualified = false;
    quirk_sink = ignore;
    strict_sensitive_sink = ignore;
    reject_template_literals = false;
    reject_arrow_functions = false;
    reject_let_const = false;
    reject_for_of = false;
    reject_exponent_op = false;
    reject_regexp_sticky = false;
  }

(* Front end of an engine that only implements ES5.1. *)
let es5_options =
  {
    default_options with
    reject_template_literals = true;
    reject_arrow_functions = true;
    reject_let_const = true;
    reject_for_of = true;
    reject_exponent_op = true;
    reject_regexp_sticky = true;
  }

type state = {
  toks : Lexer.lexed array;
  mutable idx : int;
  opts : options;
  mutable strict : bool;
}

let cur st = st.toks.(st.idx).tok
let cur_line st = st.toks.(st.idx).line
let nl_before st = st.toks.(st.idx).newline_before
let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let err st msg = raise (Syntax_error (msg, cur_line st))

let expect_punct st p =
  match cur st with
  | Token.Tpunct q when q = p -> advance st
  | t -> err st (Printf.sprintf "expected '%s', found %s" p (Token.to_string t))

let eat_punct st p =
  match cur st with
  | Token.Tpunct q when q = p ->
      advance st;
      true
  | _ -> false

let eat_keyword st k =
  match cur st with
  | Token.Tkeyword q when q = k ->
      advance st;
      true
  | _ -> false

let expect_keyword st k =
  if not (eat_keyword st k) then
    err st (Printf.sprintf "expected keyword %s, found %s" k (Token.to_string (cur st)))

let expect_ident st =
  match cur st with
  | Token.Tident n ->
      advance st;
      n
  (* [of] and [undefined] are not reserved *)
  | Token.Tkeyword "of" ->
      advance st;
      "of"
  | t -> err st ("expected identifier, found " ^ Token.to_string t)

(* Automatic semicolon insertion: an explicit ';', or the offending token is
   '}' / EOF, or a line terminator preceded it. *)
let semicolon st =
  if eat_punct st ";" then ()
  else
    match cur st with
    | Token.Tpunct "}" | Token.Teof -> ()
    | _ when nl_before st -> ()
    | t -> err st ("expected ';', found " ^ Token.to_string t)

(* Lookahead: does the parenthesised group starting at the current '('
   close and get followed by '=>'? Used to tell arrow parameter lists from
   parenthesised expressions. *)
let is_arrow_params st =
  let n = Array.length st.toks in
  let rec scan i depth =
    if i >= n then false
    else
      match st.toks.(i).tok with
      | Token.Tpunct "(" -> scan (i + 1) (depth + 1)
      | Token.Tpunct ")" ->
          if depth = 1 then
            i + 1 < n && st.toks.(i + 1).tok = Token.Tpunct "=>"
          else scan (i + 1) (depth - 1)
      | Token.Teof -> false
      | _ -> scan (i + 1) depth
  in
  scan st.idx 0

let check_params st params =
  (* the duplicate scan runs in sloppy mode too: a duplicate is a
     strict-sensitive construct even when this parse accepts it *)
  let seen = Hashtbl.create 4 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p then begin
        st.opts.strict_sensitive_sink ();
        if st.strict then
          if st.opts.accept_dup_params_strict then
            st.opts.quirk_sink "strict-dup-params-accepted"
          else err st ("duplicate parameter name in strict mode: " ^ p)
      end
      else Hashtbl.add seen p ())
    params

(* Cumulative front-end invocation count, across all domains. The campaign
   executor's parse cache is sized against this: tests snapshot it around a
   [Difftest.run_case] call to assert one parse per distinct front-end
   group rather than two or three per testbed. *)
let parses = Atomic.make 0

let parse_count () = Atomic.get parses

let rec parse_program ?(opts = default_options) ?(force_strict = false)
    (src : string) : Ast.program =
  Atomic.incr parses;
  let lexed =
    try Lexer.tokenize src
    with Lexer.Error (msg, line) -> raise (Syntax_error (msg, line))
  in
  let st = { toks = Array.of_list lexed; idx = 0; opts; strict = force_strict } in
  (* directive prologue; [force_strict] models a strict-mode testbed where
     the whole script is treated as strict code *)
  let strict =
    force_strict
    ||
    match cur st with
    | Token.Tstr "use strict" ->
        advance st;
        semicolon st;
        true
    | _ -> false
  in
  st.strict <- strict;
  let body = ref [] in
  while cur st <> Token.Teof do
    body := parse_stmt st :: !body
  done;
  { Ast.prog_body = List.rev !body; prog_strict = strict }

and parse_stmt st : Ast.stmt =
  match cur st with
  | Token.Tpunct "{" -> B.s (Ast.Block (parse_block st))
  | Token.Tpunct ";" ->
      advance st;
      B.s Ast.Empty
  | Token.Tkeyword ("var" | "let" | "const") -> parse_var_stmt st
  | Token.Tkeyword "function" -> parse_func_decl st
  | Token.Tkeyword "return" -> parse_return st
  | Token.Tkeyword "if" -> parse_if st
  | Token.Tkeyword "for" -> parse_for st
  | Token.Tkeyword "while" -> parse_while st
  | Token.Tkeyword "do" -> parse_do_while st
  | Token.Tkeyword "break" ->
      advance st;
      let label = parse_opt_label st in
      semicolon st;
      B.s (Ast.Break label)
  | Token.Tkeyword "continue" ->
      advance st;
      let label = parse_opt_label st in
      semicolon st;
      B.s (Ast.Continue label)
  | Token.Tkeyword "throw" ->
      advance st;
      if nl_before st then err st "illegal newline after throw";
      let x = parse_expr st in
      semicolon st;
      B.s (Ast.Throw x)
  | Token.Tkeyword "try" -> parse_try st
  | Token.Tkeyword "switch" -> parse_switch st
  | Token.Tkeyword "debugger" ->
      advance st;
      semicolon st;
      B.s Ast.Debugger
  | Token.Tident name
    when st.idx + 1 < Array.length st.toks
         && st.toks.(st.idx + 1).tok = Token.Tpunct ":" ->
      advance st;
      advance st;
      B.s (Ast.Labeled (name, parse_stmt st))
  | _ ->
      let x = parse_expr st in
      semicolon st;
      B.s (Ast.Expr_stmt x)

and parse_opt_label st =
  match cur st with
  | Token.Tident n when not (nl_before st) ->
      advance st;
      Some n
  | _ -> None

and parse_block st : Ast.stmt list =
  expect_punct st "{";
  let body = ref [] in
  while cur st <> Token.Tpunct "}" && cur st <> Token.Teof do
    body := parse_stmt st :: !body
  done;
  expect_punct st "}";
  List.rev !body

and parse_var_kind st : Ast.var_kind =
  match cur st with
  | Token.Tkeyword "var" ->
      advance st;
      Ast.Var
  | Token.Tkeyword "let" ->
      if st.opts.reject_let_const then err st "let is not supported";
      advance st;
      Ast.Let
  | Token.Tkeyword "const" ->
      if st.opts.reject_let_const then err st "const is not supported";
      advance st;
      Ast.Const
  | t -> err st ("expected declaration keyword, found " ^ Token.to_string t)

and parse_decl_list st ~no_in =
  let one () =
    let name = expect_ident st in
    let init =
      if eat_punct st "=" then Some (parse_assign st ~no_in) else None
    in
    (name, init)
  in
  let decls = ref [ one () ] in
  while eat_punct st "," do
    decls := one () :: !decls
  done;
  List.rev !decls

and parse_var_stmt st =
  let kind = parse_var_kind st in
  let decls = parse_decl_list st ~no_in:false in
  (if kind = Ast.Const then
     List.iter
       (fun (n, init) ->
         if init = None then err st ("missing initializer in const declaration of " ^ n))
       decls);
  semicolon st;
  B.s (Ast.Var_decl (kind, decls))

and parse_func_decl st =
  expect_keyword st "function";
  let name = expect_ident st in
  let params, body = parse_func_rest st in
  B.s (Ast.Func_decl { Ast.fname = Some name; params; body; is_arrow = false })

and parse_func_rest st =
  expect_punct st "(";
  let params = ref [] in
  if cur st <> Token.Tpunct ")" then begin
    params := [ expect_ident st ];
    while eat_punct st "," do
      params := expect_ident st :: !params
    done
  end;
  expect_punct st ")";
  let params = List.rev !params in
  check_params st params;
  let saved_strict = st.strict in
  expect_punct st "{";
  (* function-level directive prologue: strictness applies while parsing
     the body, and the directive statement is kept in the AST so the
     evaluator can see it *)
  (match cur st with
  | Token.Tstr "use strict" -> st.strict <- true
  | _ -> ());
  let body = ref [] in
  while cur st <> Token.Tpunct "}" && cur st <> Token.Teof do
    body := parse_stmt st :: !body
  done;
  expect_punct st "}";
  st.strict <- saved_strict;
  (params, List.rev !body)

and parse_return st =
  expect_keyword st "return";
  match cur st with
  | Token.Tpunct ";" ->
      advance st;
      B.s (Ast.Return None)
  | Token.Tpunct "}" | Token.Teof -> B.s (Ast.Return None)
  | _ when nl_before st -> B.s (Ast.Return None)
  | _ ->
      let x = parse_expr st in
      semicolon st;
      B.s (Ast.Return (Some x))

and parse_if st =
  expect_keyword st "if";
  expect_punct st "(";
  let c = parse_expr st in
  expect_punct st ")";
  let t = parse_stmt st in
  let f = if eat_keyword st "else" then Some (parse_stmt st) else None in
  B.s (Ast.If (c, t, f))

and parse_while st =
  expect_keyword st "while";
  expect_punct st "(";
  let c = parse_expr st in
  expect_punct st ")";
  let body = parse_stmt st in
  B.s (Ast.While (c, body))

and parse_do_while st =
  expect_keyword st "do";
  let body = parse_stmt st in
  expect_keyword st "while";
  expect_punct st "(";
  let c = parse_expr st in
  expect_punct st ")";
  ignore (eat_punct st ";");
  B.s (Ast.Do_while (body, c))

and parse_loop_body st =
  (* The body of a for/while loop. A standard parser requires a statement;
     the [accept_for_missing_body] quirk lets the loop head stand alone
     (ChakraCore, Listing 7). *)
  match cur st with
  | Token.Teof | Token.Tpunct "}" ->
      if st.opts.accept_for_missing_body then begin
        st.opts.quirk_sink "eval-for-missing-body-accepted";
        B.s Ast.Empty
      end
      else err st "missing loop body"
  | _ -> parse_stmt st

and parse_for st =
  expect_keyword st "for";
  expect_punct st "(";
  match cur st with
  | Token.Tpunct ";" ->
      advance st;
      parse_for_classic st None
  | Token.Tkeyword ("var" | "let" | "const") -> (
      let kind = parse_var_kind st in
      let name = expect_ident st in
      match cur st with
      | Token.Tkeyword "in" ->
          advance st;
          let obj = parse_expr st in
          expect_punct st ")";
          let body = parse_loop_body st in
          B.s (Ast.For_in (Some kind, name, obj, body))
      | Token.Tkeyword "of" ->
          if st.opts.reject_for_of then err st "for-of is not supported";
          advance st;
          let obj = parse_assign st ~no_in:false in
          expect_punct st ")";
          let body = parse_loop_body st in
          B.s (Ast.For_of (Some kind, name, obj, body))
      | _ ->
          let init =
            if eat_punct st "=" then Some (parse_assign st ~no_in:true)
            else None
          in
          let decls = ref [ (name, init) ] in
          while eat_punct st "," do
            let n = expect_ident st in
            let i =
              if eat_punct st "=" then Some (parse_assign st ~no_in:true)
              else None
            in
            decls := (n, i) :: !decls
          done;
          expect_punct st ";";
          parse_for_classic st (Some (Ast.FI_decl (kind, List.rev !decls))))
  | _ -> (
      (* expression init; may still be for-in/of with a bare identifier *)
      let x = parse_expr st ~no_in:true in
      match (x.Ast.e, cur st) with
      | Ast.Ident name, Token.Tkeyword "in" ->
          advance st;
          let obj = parse_expr st in
          expect_punct st ")";
          let body = parse_loop_body st in
          B.s (Ast.For_in (None, name, obj, body))
      | Ast.Ident name, Token.Tkeyword "of" ->
          if st.opts.reject_for_of then err st "for-of is not supported";
          advance st;
          let obj = parse_assign st ~no_in:false in
          expect_punct st ")";
          let body = parse_loop_body st in
          B.s (Ast.For_of (None, name, obj, body))
      | _ ->
          expect_punct st ";";
          parse_for_classic st (Some (Ast.FI_expr x)))

and parse_for_classic st init =
  let cond =
    if cur st = Token.Tpunct ";" then None else Some (parse_expr st)
  in
  expect_punct st ";";
  let upd =
    if cur st = Token.Tpunct ")" then None else Some (parse_expr st)
  in
  expect_punct st ")";
  let body = parse_loop_body st in
  B.s (Ast.For (init, cond, upd, body))

and parse_try st =
  expect_keyword st "try";
  let body = parse_block st in
  let handler =
    if eat_keyword st "catch" then begin
      expect_punct st "(";
      let param = expect_ident st in
      expect_punct st ")";
      Some (param, parse_block st)
    end
    else None
  in
  let finalizer =
    if eat_keyword st "finally" then Some (parse_block st) else None
  in
  if handler = None && finalizer = None then
    err st "missing catch or finally after try";
  B.s (Ast.Try (body, handler, finalizer))

and parse_switch st =
  expect_keyword st "switch";
  expect_punct st "(";
  let d = parse_expr st in
  expect_punct st ")";
  expect_punct st "{";
  let cases = ref [] in
  let seen_default = ref false in
  while cur st <> Token.Tpunct "}" && cur st <> Token.Teof do
    let disc =
      if eat_keyword st "case" then begin
        let c = parse_expr st in
        expect_punct st ":";
        Some c
      end
      else if eat_keyword st "default" then begin
        if !seen_default then err st "multiple default clauses in switch";
        seen_default := true;
        expect_punct st ":";
        None
      end
      else err st "expected case or default in switch body"
    in
    let body = ref [] in
    while
      match cur st with
      | Token.Tkeyword ("case" | "default") | Token.Tpunct "}" | Token.Teof ->
          false
      | _ -> true
    do
      body := parse_stmt st :: !body
    done;
    cases := (disc, List.rev !body) :: !cases
  done;
  expect_punct st "}";
  B.s (Ast.Switch (d, List.rev !cases))

(* --- expressions --- *)

and parse_expr ?(no_in = false) st : Ast.expr =
  let x = parse_assign st ~no_in in
  if cur st = Token.Tpunct "," then begin
    let acc = ref x in
    while eat_punct st "," do
      acc := B.e (Ast.Seq (!acc, parse_assign st ~no_in))
    done;
    !acc
  end
  else x

and parse_assign st ~no_in : Ast.expr =
  (* arrow functions are parsed at assignment level *)
  (match cur st with
  | Token.Tpunct "(" when (not st.opts.reject_arrow_functions) && is_arrow_params st ->
      Some (parse_arrow st)
  | Token.Tident name
    when (not st.opts.reject_arrow_functions)
         && st.idx + 1 < Array.length st.toks
         && st.toks.(st.idx + 1).tok = Token.Tpunct "=>" ->
      advance st;
      advance st;
      Some (parse_arrow_body st [ name ])
  | _ -> None)
  |> function
  | Some arrow -> arrow
  | None -> (
      let lhs = parse_cond st ~no_in in
      let assign_op =
        match cur st with
        | Token.Tpunct "=" -> Some None
        | Token.Tpunct "+=" -> Some (Some Ast.Add)
        | Token.Tpunct "-=" -> Some (Some Ast.Sub)
        | Token.Tpunct "*=" -> Some (Some Ast.Mul)
        | Token.Tpunct "/=" -> Some (Some Ast.Div)
        | Token.Tpunct "%=" -> Some (Some Ast.Mod)
        | Token.Tpunct "&=" -> Some (Some Ast.BitAnd)
        | Token.Tpunct "|=" -> Some (Some Ast.BitOr)
        | Token.Tpunct "^=" -> Some (Some Ast.BitXor)
        | Token.Tpunct "**=" -> Some (Some Ast.Exp)
        | _ -> None
      in
      match assign_op with
      | None -> lhs
      | Some op ->
          (match lhs.Ast.e with
          | Ast.Ident _ | Ast.Member _ -> ()
          | _ -> err st "invalid assignment target");
          (match lhs.Ast.e with
          | Ast.Ident ("eval" | "arguments") ->
              st.opts.strict_sensitive_sink ();
              if st.strict then
                err st "assignment to eval/arguments in strict mode"
          | _ -> ());
          advance st;
          let rhs = parse_assign st ~no_in in
          B.e (Ast.Assign (op, lhs, rhs)))

and parse_arrow st : Ast.expr =
  expect_punct st "(";
  let params = ref [] in
  if cur st <> Token.Tpunct ")" then begin
    params := [ expect_ident st ];
    while eat_punct st "," do
      params := expect_ident st :: !params
    done
  end;
  expect_punct st ")";
  expect_punct st "=>";
  parse_arrow_body st (List.rev !params)

and parse_arrow_body st params =
  check_params st params;
  let body =
    if cur st = Token.Tpunct "{" then parse_block st
    else
      let x = parse_assign st ~no_in:false in
      [ B.s (Ast.Return (Some x)) ]
  in
  B.e (Ast.Arrow { Ast.fname = None; params; body; is_arrow = true })

and parse_cond st ~no_in : Ast.expr =
  let c = parse_binary st ~no_in ~min_prec:4 in
  if eat_punct st "?" then begin
    let t = parse_assign st ~no_in:false in
    expect_punct st ":";
    let f = parse_assign st ~no_in in
    B.e (Ast.Cond (c, t, f))
  end
  else c

and binop_of_token st ~no_in : (Ast.binop option * Ast.logop option) option =
  match cur st with
  | Token.Tpunct "+" -> Some (Some Ast.Add, None)
  | Token.Tpunct "-" -> Some (Some Ast.Sub, None)
  | Token.Tpunct "*" -> Some (Some Ast.Mul, None)
  | Token.Tpunct "/" -> Some (Some Ast.Div, None)
  | Token.Tpunct "%" -> Some (Some Ast.Mod, None)
  | Token.Tpunct "**" ->
      if st.opts.reject_exponent_op then err st "'**' is not supported";
      Some (Some Ast.Exp, None)
  | Token.Tpunct "==" -> Some (Some Ast.Eq, None)
  | Token.Tpunct "!=" -> Some (Some Ast.Neq, None)
  | Token.Tpunct "===" -> Some (Some Ast.StrictEq, None)
  | Token.Tpunct "!==" -> Some (Some Ast.StrictNeq, None)
  | Token.Tpunct "<" -> Some (Some Ast.Lt, None)
  | Token.Tpunct ">" -> Some (Some Ast.Gt, None)
  | Token.Tpunct "<=" -> Some (Some Ast.Le, None)
  | Token.Tpunct ">=" -> Some (Some Ast.Ge, None)
  | Token.Tpunct "&" -> Some (Some Ast.BitAnd, None)
  | Token.Tpunct "|" -> Some (Some Ast.BitOr, None)
  | Token.Tpunct "^" -> Some (Some Ast.BitXor, None)
  | Token.Tpunct "<<" -> Some (Some Ast.Shl, None)
  | Token.Tpunct ">>" -> Some (Some Ast.Shr, None)
  | Token.Tpunct ">>>" -> Some (Some Ast.Ushr, None)
  | Token.Tkeyword "instanceof" -> Some (Some Ast.Instanceof, None)
  | Token.Tkeyword "in" when not no_in -> Some (Some Ast.In, None)
  | Token.Tpunct "&&" -> Some (None, Some Ast.And)
  | Token.Tpunct "||" -> Some (None, Some Ast.Or)
  | _ -> None

and parse_binary st ~no_in ~min_prec : Ast.expr =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token st ~no_in with
    | Some (Some op, None) when Ast.binop_prec op >= min_prec ->
        advance st;
        let next_min =
          if op = Ast.Exp then Ast.binop_prec op else Ast.binop_prec op + 1
        in
        let rhs = parse_binary st ~no_in ~min_prec:next_min in
        lhs := B.e (Ast.Binary (op, !lhs, rhs))
    | Some (None, Some op) when Ast.logop_prec op >= min_prec ->
        advance st;
        let rhs = parse_binary st ~no_in ~min_prec:(Ast.logop_prec op + 1) in
        lhs := B.e (Ast.Logical (op, !lhs, rhs))
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st : Ast.expr =
  match cur st with
  | Token.Tpunct "-" ->
      advance st;
      B.e (Ast.Unary (Ast.Uneg, parse_unary st))
  | Token.Tpunct "+" ->
      advance st;
      B.e (Ast.Unary (Ast.Uplus, parse_unary st))
  | Token.Tpunct "!" ->
      advance st;
      B.e (Ast.Unary (Ast.Unot, parse_unary st))
  | Token.Tpunct "~" ->
      advance st;
      B.e (Ast.Unary (Ast.Ubnot, parse_unary st))
  | Token.Tkeyword "typeof" ->
      advance st;
      B.e (Ast.Unary (Ast.Utypeof, parse_unary st))
  | Token.Tkeyword "void" ->
      advance st;
      B.e (Ast.Unary (Ast.Uvoid, parse_unary st))
  | Token.Tkeyword "delete" ->
      advance st;
      let x = parse_unary st in
      (match x.Ast.e with
      | Ast.Ident _ ->
          st.opts.strict_sensitive_sink ();
          if st.strict then
            if st.opts.accept_strict_delete_unqualified then
              st.opts.quirk_sink "strict-delete-unqualified-accepted"
            else err st "delete of an unqualified identifier in strict mode"
      | _ -> ());
      B.e (Ast.Unary (Ast.Udelete, x))
  | Token.Tpunct "++" ->
      advance st;
      B.e (Ast.Update (Ast.Incr, true, parse_unary st))
  | Token.Tpunct "--" ->
      advance st;
      B.e (Ast.Update (Ast.Decr, true, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st : Ast.expr =
  let x = parse_call_member st in
  match cur st with
  | Token.Tpunct "++" when not (nl_before st) ->
      advance st;
      B.e (Ast.Update (Ast.Incr, false, x))
  | Token.Tpunct "--" when not (nl_before st) ->
      advance st;
      B.e (Ast.Update (Ast.Decr, false, x))
  | _ -> x

and parse_call_member st : Ast.expr =
  let base =
    if cur st = Token.Tkeyword "new" then parse_new st else parse_primary st
  in
  parse_call_tail st base

and parse_new st : Ast.expr =
  expect_keyword st "new";
  let callee =
    if cur st = Token.Tkeyword "new" then parse_new st
    else
      let p = parse_primary st in
      parse_member_tail st p
  in
  let args = if cur st = Token.Tpunct "(" then parse_args st else [] in
  B.e (Ast.New (callee, args))

and parse_member_tail st base : Ast.expr =
  match cur st with
  | Token.Tpunct "." ->
      advance st;
      let name =
        match cur st with
        | Token.Tident n ->
            advance st;
            n
        | Token.Tkeyword n ->
            (* property names may be keywords: [x.in], [x.delete] *)
            advance st;
            n
        | t -> err st ("expected property name, found " ^ Token.to_string t)
      in
      parse_member_tail st (B.e (Ast.Member (base, Ast.Pfield name)))
  | Token.Tpunct "[" ->
      advance st;
      let i = parse_expr st in
      expect_punct st "]";
      parse_member_tail st (B.e (Ast.Member (base, Ast.Pindex i)))
  | _ -> base

and parse_call_tail st base : Ast.expr =
  match cur st with
  | Token.Tpunct "." | Token.Tpunct "[" ->
      parse_call_tail st (parse_member_tail st base)
  | Token.Tpunct "(" ->
      let args = parse_args st in
      parse_call_tail st (B.e (Ast.Call (base, args)))
  | _ -> base

and parse_args st : Ast.expr list =
  expect_punct st "(";
  let args = ref [] in
  if cur st <> Token.Tpunct ")" then begin
    args := [ parse_assign st ~no_in:false ];
    while eat_punct st "," do
      args := parse_assign st ~no_in:false :: !args
    done
  end;
  expect_punct st ")";
  List.rev !args

and parse_primary st : Ast.expr =
  match cur st with
  | Token.Tnum f ->
      advance st;
      B.e (Ast.Lit (Ast.Lnum f))
  | Token.Tstr s ->
      advance st;
      B.e (Ast.Lit (Ast.Lstr s))
  | Token.Tregexp (body, flags) ->
      if st.opts.reject_regexp_sticky && String.contains flags 'y' then
        err st "regexp sticky flag is not supported";
      advance st;
      B.e (Ast.Lit (Ast.Lregexp (body, flags)))
  | Token.Ttemplate parts ->
      if st.opts.reject_template_literals then
        err st "template literals are not supported";
      advance st;
      parse_template st parts
  | Token.Tkeyword "null" ->
      advance st;
      B.e (Ast.Lit Ast.Lnull)
  | Token.Tkeyword "true" ->
      advance st;
      B.e (Ast.Lit (Ast.Lbool true))
  | Token.Tkeyword "false" ->
      advance st;
      B.e (Ast.Lit (Ast.Lbool false))
  | Token.Tkeyword "this" ->
      advance st;
      B.e Ast.This
  | Token.Tkeyword "function" ->
      advance st;
      let name =
        match cur st with
        | Token.Tident n ->
            advance st;
            Some n
        | _ -> None
      in
      let params, body = parse_func_rest st in
      B.e (Ast.Func { Ast.fname = name; params; body; is_arrow = false })
  | Token.Tident n ->
      advance st;
      B.e (Ast.Ident n)
  | Token.Tkeyword "of" ->
      advance st;
      B.e (Ast.Ident "of")
  | Token.Tpunct "(" ->
      advance st;
      let x = parse_expr st in
      expect_punct st ")";
      x
  | Token.Tpunct "[" -> parse_array st
  | Token.Tpunct "{" -> parse_object st
  | t -> err st ("unexpected " ^ Token.to_string t)

and parse_template st parts : Ast.expr =
  let conv = function
    | Token.Pstr s -> Ast.Tstr s
    | Token.Psub toks ->
        (* substitution token lists are re-parsed as expressions *)
        let sub_toks =
          List.map
            (fun t -> { Lexer.tok = t; line = cur_line st; newline_before = false })
            (toks @ [ Token.Teof ])
        in
        let sub_st =
          { toks = Array.of_list sub_toks; idx = 0; opts = st.opts; strict = st.strict }
        in
        let x = parse_expr sub_st in
        if cur sub_st <> Token.Teof then
          err st "trailing tokens in template substitution";
        Ast.Tsub x
  in
  B.e (Ast.Template (List.map conv parts))

and parse_array st : Ast.expr =
  expect_punct st "[";
  let elems = ref [] in
  let rec loop () =
    match cur st with
    | Token.Tpunct "]" -> advance st
    | Token.Tpunct "," ->
        advance st;
        elems := None :: !elems;
        loop ()
    | _ ->
        let x = parse_assign st ~no_in:false in
        elems := Some x :: !elems;
        if eat_punct st "," then loop ()
        else expect_punct st "]"
  in
  loop ();
  B.e (Ast.Array_lit (List.rev !elems))

and parse_object st : Ast.expr =
  expect_punct st "{";
  let props = ref [] in
  let rec loop () =
    match cur st with
    | Token.Tpunct "}" -> advance st
    | _ ->
        let pn =
          match cur st with
          | Token.Tident n ->
              advance st;
              Ast.PN_ident n
          | Token.Tkeyword n ->
              advance st;
              Ast.PN_ident n
          | Token.Tstr s ->
              advance st;
              Ast.PN_str s
          | Token.Tnum f ->
              advance st;
              Ast.PN_num f
          | Token.Tpunct "[" ->
              advance st;
              let x = parse_assign st ~no_in:false in
              expect_punct st "]";
              Ast.PN_computed x
          | t -> err st ("expected property name, found " ^ Token.to_string t)
        in
        let v =
          if eat_punct st ":" then parse_assign st ~no_in:false
          else
            (* shorthand { a } *)
            match pn with
            | Ast.PN_ident n -> B.e (Ast.Ident n)
            | _ -> err st "expected ':' in object literal"
        in
        props := (pn, v) :: !props;
        if eat_punct st "," then loop () else expect_punct st "}"
  in
  loop ();
  B.e (Ast.Object_lit (List.rev !props))

(* JSHint substitute: syntactic validity under the standard front end. *)
let check_syntax (src : string) : (Ast.program, string * int) result =
  match parse_program ~opts:default_options src with
  | p -> Ok p
  | exception Syntax_error (msg, line) -> Error (msg, line)

let is_valid src = Result.is_ok (check_syntax src)
