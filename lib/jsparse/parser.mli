(** Recursive-descent parser for the JavaScript subset.

    The parser is parameterised by {!options} so that each simulated engine
    can exhibit its own front-end behaviour: older engines reject ES2015
    syntax outright, and some engines carry parser conformance bugs (e.g.
    accepting a [for] head with no body — the ChakraCore bug of the paper's
    Listing 7). The default options model a standard-conforming ES2019
    front end, which is also the pipeline's JSHint-substitute syntax
    oracle. *)

exception Syntax_error of string * int  (** message, line *)

type options = {
  accept_for_missing_body : bool;
      (** quirk: treat [for(head)] with no body as an empty loop *)
  accept_dup_params_strict : bool;
      (** quirk: no SyntaxError on duplicate params in strict mode *)
  accept_strict_delete_unqualified : bool;
      (** quirk: no SyntaxError on [delete x] in strict mode *)
  quirk_sink : string -> unit;
      (** called with the quirk name when a quirk-gated acceptance actually
          fires, so campaigns can attribute parse-stage deviations *)
  strict_sensitive_sink : unit -> unit;
      (** called whenever the parse reaches a construct whose outcome
          depends on the ambient strict flag (duplicate parameters,
          assignment to eval/arguments, [delete identifier]). If a sloppy
          parse never calls it, a [force_strict] parse of the same source
          is guaranteed identical, so front-end caches can share one
          parse across modes. *)
  reject_template_literals : bool;  (** pre-ES2015 front end *)
  reject_arrow_functions : bool;    (** pre-ES2015 front end *)
  reject_let_const : bool;          (** pre-ES2015 front end *)
  reject_for_of : bool;             (** pre-ES2015 front end *)
  reject_exponent_op : bool;        (** pre-ES2016 front end *)
  reject_regexp_sticky : bool;      (** pre-ES2015: flag [y] unsupported *)
}

(** A standard-conforming ES2019 front end. *)
val default_options : options

(** The front end of an engine that only implements ES5.1. *)
val es5_options : options

(** Parse a whole program. [force_strict] models a strict-mode testbed
    where the entire script is treated as strict code (strict-only parse
    rules apply even without a directive).
    @raise Syntax_error on invalid input. *)
val parse_program : ?opts:options -> ?force_strict:bool -> string -> Jsast.Ast.program

(** JSHint substitute: validity under the standard front end. *)
val check_syntax : string -> (Jsast.Ast.program, string * int) result

val is_valid : string -> bool

(** Cumulative number of {!parse_program} invocations across all domains
    ([check_syntax]/[is_valid] parse too). Snapshot before/after an
    operation to measure how many front-end passes it cost — the
    campaign's per-case parse cache is tested against this counter. *)
val parse_count : unit -> int
