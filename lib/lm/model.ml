(* Trained language models over the embedded corpus.

   [comfort ()] is the Comfort generator's model: BPE tokens, order-8
   context. [deepsmith ()] is the baseline: character tokens, order-4 —
   the same machinery with shorter modelled dependencies, standing in for
   DeepSmith's LSTM. Both are memoised; training is a one-off cost like the
   paper's 30 GPU-hours, at laptop scale. *)

type t = {
  tokenizer : Bpe.t;
  model : Ngram.t;
  char_level : bool;
}

let bos = -1

let train_bpe ?(order = 8) ?(n_merges = 200) (programs : string list) : t =
  let tok = Bpe.learn ~n_merges (String.concat "\n\n" programs) in
  let model = Ngram.create ~order ~bos in
  let eof = Bpe.eof_id tok in
  List.iter
    (fun p -> Ngram.add_sequence model (Bpe.encode tok p @ [ eof ]))
    programs;
  { tokenizer = tok; model; char_level = false }

let train_chars ?(order = 4) (programs : string list) : t =
  let tok = Bpe.char_tokenizer () in
  let model = Ngram.create ~order ~bos in
  (* encoding any text interns <EOF> first *)
  ignore (Bpe.encode_chars tok "");
  let eof = Bpe.eof_id tok in
  List.iter
    (fun p -> Ngram.add_sequence model (Bpe.encode_chars tok p @ [ eof ]))
    programs;
  { tokenizer = tok; model; char_level = true }

let comfort : t Lazy.t = lazy (train_bpe Js_corpus.programs)
let deepsmith : t Lazy.t = lazy (train_chars Js_corpus.programs)

let encode (t : t) (text : string) : int list =
  if t.char_level then Bpe.encode_chars t.tokenizer text
  else Bpe.encode t.tokenizer text

let decode (t : t) (ids : int list) : string = Bpe.decode t.tokenizer ids

let eof (t : t) : int = Bpe.eof_id t.tokenizer

(* Generate token ids continuing [prefix] until the predicate [stop] accepts
   the text so far, <EOF> is produced, or [max_tokens] is hit. Returns the
   full token list including the prefix. *)
let generate (t : t) (rng : Cutil.Rng.t) ~(prefix : string) ~(k : int)
    ~(max_tokens : int) ~(stop : string -> bool) : string =
  let prefix_ids = encode t prefix in
  (* [Ngram.candidates] never consults more than [order - 1] trailing
     tokens, so the generation loop keeps a bounded context window (kept
     reversed for O(1) push) instead of the full history — re-reversing
     an unbounded history per sampled token made long programs quadratic
     in their own length, which the campaign profiler surfaced as the
     bulk of the generate stage. *)
  let ctx_len = Ngram.order t.model - 1 in
  let rec take n = function
    | [] -> []
    | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl
  in
  let window =
    ref (take ctx_len (List.rev (Ngram.initial_history t.model prefix_ids)))
  in
  let acc = Buffer.create 256 in
  Buffer.add_string acc prefix;
  (* seed stateful stop predicates with the prefix; its own verdict is
     ignored, as at least one token is always sampled *)
  let (_ : bool) = stop prefix in
  let eof_id = eof t in
  let continue_ = ref true in
  let steps = ref 0 in
  while !continue_ && !steps < max_tokens do
    incr steps;
    match Ngram.sample t.model rng (List.rev !window) ~k with
    | None -> continue_ := false
    | Some tok when tok = eof_id -> continue_ := false
    | Some tok ->
        let chunk =
          match Bpe.token_of t.tokenizer tok with
          | Some s ->
              Buffer.add_string acc s;
              s
          | None -> ""
        in
        window := take ctx_len (tok :: !window);
        if stop chunk then continue_ := false
  done;
  Buffer.contents acc
