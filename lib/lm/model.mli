(** Trained language models over the embedded JS corpus.

    {!comfort} is the Comfort generator's model: BPE tokens with an order-8
    back-off context — the GPT-2 substitute (see DESIGN.md). {!deepsmith}
    is the baseline: character tokens with an order-4 context, standing in
    for DeepSmith's LSTM. The longer modelled context is what reproduces
    the paper's syntactic-validity gap (Fig. 9). *)

type t = {
  tokenizer : Bpe.t;
  model : Ngram.t;
  char_level : bool;
}

val train_bpe : ?order:int -> ?n_merges:int -> string list -> t
val train_chars : ?order:int -> string list -> t

(** Memoised standard models (training is a one-off cost, as in the
    paper's 30 GPU-hours — at laptop scale). *)
val comfort : t Lazy.t
val deepsmith : t Lazy.t

val encode : t -> string -> int list
val decode : t -> int list -> string
val eof : t -> int

(** Sample a continuation of [prefix] with top-[k] sampling until [stop]
    accepts, [<EOF>] is produced, or [max_tokens] is hit. [stop] is an
    {e incremental} predicate: it is called once on the prefix (verdict
    ignored — at least one token is always sampled) and then once per
    appended chunk, so a stateful predicate sees the whole text exactly
    once where a whole-string rescan per token would be quadratic. Build
    a fresh predicate per call (e.g. the generator's [brace_stop ()]). *)
val generate :
  t ->
  Cutil.Rng.t ->
  prefix:string ->
  k:int ->
  max_tokens:int ->
  stop:(string -> bool) ->
  string
