(* Back-off n-gram language model with top-k sampling.

   The density-estimation substitute for the paper's fine-tuned GPT-2 (see
   DESIGN.md): the surrounding machinery — top-k next-token sampling,
   bracket-matched termination, <EOF>, length caps — follows §3.2 verbatim.
   A higher order means longer modelled dependencies; the DeepSmith baseline
   uses the same code at character level with a short context, reproducing
   the LSTM-vs-Transformer gap of Fig. 9. *)

(* One context's continuation counts, with the count-descending sort
   memoised: models are trained once and then sampled for the life of
   the process, and re-sorting the cell on every sampled token was a
   measurable slice of the campaign's generate stage. An empty [cc_sorted]
   means dirty ([candidates] only consults non-empty cells). *)
type cell = {
  mutable cc_counts : (int * int) list;  (* assoc of next-token counts *)
  mutable cc_sorted : (int * int) list;  (* memoised sorted view *)
}

type t = {
  order : int;                                  (* max context length + 1 *)
  tables : (string, cell) Hashtbl.t array;
      (* tables.(k): context of length k -> its continuation cell *)
  bos : int;                                    (* synthetic begin marker *)
}

let key (ctx : int list) : string = String.concat "," (List.map string_of_int ctx)

let create ~order ~bos =
  {
    order;
    tables = Array.init order (fun _ -> Hashtbl.create 1024);
    bos;
  }

let bump tbl ctx next =
  let k = key ctx in
  let cell =
    match Hashtbl.find_opt tbl k with
    | Some c -> c
    | None ->
        let c = { cc_counts = []; cc_sorted = [] } in
        Hashtbl.replace tbl k c;
        c
  in
  cell.cc_counts <-
    (match List.assoc_opt next cell.cc_counts with
    | Some n -> (next, n + 1) :: List.remove_assoc next cell.cc_counts
    | None -> (next, 1) :: cell.cc_counts);
  cell.cc_sorted <- []

(* Train on one token sequence (one program). *)
let add_sequence (t : t) (seq : int list) : unit =
  let padded = List.init (t.order - 1) (fun _ -> t.bos) @ seq in
  let arr = Array.of_list padded in
  let n = Array.length arr in
  for i = t.order - 1 to n - 1 do
    let next = arr.(i) in
    for k = 0 to t.order - 1 do
      (* context of length k ending right before position i *)
      let ctx = Array.to_list (Array.sub arr (i - k) k) in
      bump t.tables.(k) ctx next
    done
  done

(* Top-k candidates for the longest matching context, backing off to
   shorter contexts when a context is unseen. Deterministic ordering:
   count desc, then token id. *)
let candidates (t : t) (history : int list) ~(k : int) : (int * int) list =
  let hist = Array.of_list history in
  let n = Array.length hist in
  let rec back_off len =
    if len < 0 then []
    else begin
      let ctx = Array.to_list (Array.sub hist (n - len) len) in
      match Hashtbl.find_opt t.tables.(len) (key ctx) with
      | Some cell when cell.cc_counts <> [] ->
          if cell.cc_sorted = [] then
            cell.cc_sorted <-
              List.sort
                (fun (t1, c1) (t2, c2) ->
                  match compare c2 c1 with 0 -> compare t1 t2 | c -> c)
                cell.cc_counts;
          List.filteri (fun i _ -> i < k) cell.cc_sorted
      | _ -> back_off (len - 1)
    end
  in
  back_off (min (t.order - 1) n)

(* Sample the next token: weighted draw among the top-k candidates. *)
let sample (t : t) (rng : Cutil.Rng.t) (history : int list) ~(k : int) : int option =
  match candidates t history ~k with
  | [] -> None
  | cands -> Some (Cutil.Rng.weighted rng (List.map (fun (tok, c) -> (c, tok)) cands))

(* Pad the history with BOS for a fresh generation. *)
let initial_history (t : t) (prefix : int list) : int list =
  List.init (t.order - 1) (fun _ -> t.bos) @ prefix

let order (t : t) : int = t.order
