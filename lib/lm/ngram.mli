(** Back-off n-gram language model with top-k sampling — the density
    estimator standing in for the paper's fine-tuned GPT-2. *)

type t

(** [create ~order ~bos] builds an empty model with contexts up to
    [order - 1] tokens, padded with the synthetic begin marker [bos]. *)
val create : order:int -> bos:int -> t

(** Train on one token sequence (one program). *)
val add_sequence : t -> int list -> unit

(** Top-[k] continuations of the longest matching context, backing off to
    shorter contexts when unseen. Deterministic order: count descending,
    then token id. *)
val candidates : t -> int list -> k:int -> (int * int) list

(** Weighted draw among the top-[k] candidates; [None] at a dead end. *)
val sample : t -> Cutil.Rng.t -> int list -> k:int -> int option

(** Pad a prompt with begin markers for a fresh generation. *)
val initial_history : t -> int list -> int list

(** The model's order: {!candidates} never consults more than
    [order t - 1] trailing tokens of history, so generation loops may
    keep a context window of that length instead of the full history. *)
val order : t -> int
