(* The catalogue of injected conformance deviations ("quirks").

   Each constructor names one concrete deviation from ECMA-262 that the
   reference interpreter can be configured to exhibit. A simulated engine
   version (see the [engines] library) is the reference semantics plus a set
   of quirks. The interpreter consults the active set at the corresponding
   conformance-relevant point and records when a quirk's deviant path
   actually executes — that record is how a fuzzing campaign's findings are
   scored against ground truth.

   The first block reproduces the bugs reported in the paper (§2.3, §5.2,
   §5.3.2); the rest are modelled on the paper's bug statistics so that the
   per-API and per-component distributions (Tables 4–5, Fig. 7) have enough
   mass to reproduce. Metadata (owning engine, version fixed in, component,
   confirmation status) lives in [Engines.Catalogue]. *)

type t =
  (* --- bugs lifted directly from the paper --- *)
  | Q_substr_undefined_length_empty
      (** Rhino (Fig. 2): [s.substr(start, undefined)] returns [""] instead
          of the suffix. *)
  | Q_defineproperty_array_length_no_typeerror
      (** V8/Graaljs (Listing 1): redefining non-configurable array [length]
          with [configurable: true] must throw TypeError; it doesn't. *)
  | Q_array_reverse_fill_quadratic
      (** Hermes (Listing 2): filling an array from high to low indices
          relocates storage per element — quadratic time. *)
  | Q_uint32array_fractional_length_typeerror
      (** SpiderMonkey < 52.9 (Listing 3): [new Uint32Array(3.14)] throws
          TypeError instead of converting via ToInteger. *)
  | Q_tofixed_no_rangeerror
      (** Rhino (Listing 4): [toFixed(-2)] returns a string instead of
          throwing RangeError. *)
  | Q_typedarray_set_string_typeerror
      (** JSC < 261782 (Listing 5): [uint8.set("123")] throws TypeError
          instead of treating the string as array-like. *)
  | Q_bool_prop_appends_to_array
      (** QuickJS (Listing 6): [arr\[true\] = v] appends [v] as an element
          instead of setting property ["true"]. *)
  | Q_eval_for_missing_body_accepted
      (** ChakraCore (Listing 7): [eval("for(...)")] with no loop body
          compiles instead of throwing SyntaxError. *)
  | Q_split_regexp_anchor_bug
      (** JerryScript (Listing 8): ["anA".split(/^A/)] returns ["an"]
          instead of ["anA"]. *)
  | Q_normalize_empty_crash
      (** QuickJS (Listing 9): [("").normalize(arg)] crashes the engine. *)
  | Q_seal_string_object_crash
      (** Rhino (Listing 11, found by Fuzzilli): [Object.seal(new String(n))]
          crashes. *)
  | Q_string_big_null_no_typeerror
      (** Rhino (Listing 10, found by CodeAlchemist):
          [String.prototype.big.call(null)] must throw TypeError. *)
  | Q_regexp_lastindex_nonwritable_silent
      (** Rhino/JerryScript (Listing 12, found by DIE): writing [lastIndex]
          through [exec] when it is non-writable must throw TypeError. *)
  | Q_named_funcexpr_binding_mutable
      (** Hermes/Rhino (Listing 13, found by Montage): the name binding of a
          named function expression is writable inside the function. *)
  (* --- String API (paper: 22 submitted string bugs; 8 on replace) --- *)
  | Q_replace_dollar_group_literal   (** [$1] in replacement copied literally *)
  | Q_replace_fn_missing_offset      (** replacer function called without offset/string args *)
  | Q_replace_undefined_search_noop  (** [replace(undefined, x)] does not match "undefined" *)
  | Q_replace_empty_pattern_skips    (** empty-string pattern fails to match at position 0 *)
  | Q_charat_negative_wraps          (** [charAt(-1)] returns the last character *)
  | Q_padstart_overlong_truncates    (** [padStart(n)] with n < length truncates *)
  | Q_trim_missing_vt                (** [trim] does not strip vertical tab *)
  | Q_repeat_negative_empty          (** [repeat(-1)] returns "" instead of RangeError *)
  | Q_string_indexof_fromindex_ignored
  | Q_slice_negative_start_zero      (** [slice(-n)] treated as [slice(0)] *)
  | Q_startswith_position_ignored
  | Q_lastindexof_nan_zero           (** [lastIndexOf(s, NaN)] searches from 0, not end *)
  (* --- Array API (paper: 17 submitted) --- *)
  | Q_array_sort_numeric_default     (** default sort compares numerically *)
  | Q_splice_negative_delcount_deletes
  | Q_array_indexof_nan_found
  | Q_array_includes_strict_nan      (** [includes(NaN)] false — uses === not SameValueZero *)
  | Q_unshift_returns_undefined
  | Q_join_prints_null_undefined
  | Q_reduce_empty_returns_undefined (** no TypeError on empty reduce without seed *)
  | Q_flat_ignores_depth
  | Q_array_fill_skips_last          (** [fill] end index treated exclusive-minus-one *)
  (* --- Number API (paper: 5 submitted) --- *)
  | Q_tostring_radix_no_rangeerror
  | Q_toprecision_zero_accepted
  | Q_parseint_no_hex_prefix
  | Q_parsefloat_trailing_nan
  | Q_number_isinteger_coerces
  (* --- Object API (paper: 23 submitted) --- *)
  | Q_freeze_array_elements_writable
  | Q_keys_includes_nonenumerable
  | Q_getownpropertynames_sorted
  | Q_defineproperty_defaults_writable
  | Q_assign_skips_numeric_keys
  | Q_hasownproperty_walks_proto
  | Q_delete_nonconfigurable_succeeds
  (* --- JSON --- *)
  | Q_json_stringify_undefined_string
  | Q_json_parse_trailing_comma
  | Q_json_stringify_nan_literal
  (* --- RegExp engine component --- *)
  | Q_regex_dot_matches_newline
  | Q_regex_ignorecase_broken
  | Q_regex_class_negation_broken
  (* --- TypedArray / DataView --- *)
  | Q_typedarray_oob_write_crash
  | Q_uint8clamped_wraps
  | Q_dataview_no_bounds_check
  | Q_typedarray_fill_no_coerce
  (* --- eval --- *)
  | Q_eval_expr_returns_undefined
  | Q_eval_string_result_quoted     (** eval of a string expr returns it quoted *)
  (* --- code generation component --- *)
  | Q_codegen_neg_zero_positive     (** [-0] produces [+0]; observable via [1/-0] *)
  | Q_codegen_mod_sign_wrong        (** [(-5) % 3] returns [1] instead of [-2] *)
  | Q_codegen_shift_count_unmasked  (** [1 << 33] computed as [0] (count not masked) *)
  | Q_codegen_ushr_signed           (** [-1 >>> 0] stays [-1] *)
  | Q_codegen_string_relational_numeric  (** ["10" < "9"] compared numerically *)
  | Q_codegen_null_eq_undefined_false    (** [null == undefined] is [false] *)
  | Q_codegen_plus_bool_concat      (** [true + 1] concatenates to ["true1"] *)
  (* --- optimizer component (loop-count-dependent misbehaviour) --- *)
  | Q_opt_int_add_overflow_wraps    (** after 2^31, [x + 1] wraps negative *)
  | Q_opt_loop_strconcat_drops      (** long-running loop drops one [+=] append *)
  (* --- strict-mode-only deviations --- *)
  | Q_strict_undeclared_assign_silent
  | Q_strict_this_is_global
  | Q_strict_delete_unqualified_accepted  (** parser accepts [delete x] in strict code *)
  | Q_strict_dup_params_accepted          (** parser accepts duplicate params in strict code *)

(* Total order for use in sets/maps and stable report output. *)
let compare = Stdlib.compare
let equal a b = compare a b = 0

let all : t list =
  [
    Q_substr_undefined_length_empty; Q_defineproperty_array_length_no_typeerror;
    Q_array_reverse_fill_quadratic; Q_uint32array_fractional_length_typeerror;
    Q_tofixed_no_rangeerror; Q_typedarray_set_string_typeerror;
    Q_bool_prop_appends_to_array; Q_eval_for_missing_body_accepted;
    Q_split_regexp_anchor_bug; Q_normalize_empty_crash;
    Q_seal_string_object_crash; Q_string_big_null_no_typeerror;
    Q_regexp_lastindex_nonwritable_silent; Q_named_funcexpr_binding_mutable;
    Q_replace_dollar_group_literal; Q_replace_fn_missing_offset;
    Q_replace_undefined_search_noop; Q_replace_empty_pattern_skips;
    Q_charat_negative_wraps; Q_padstart_overlong_truncates; Q_trim_missing_vt;
    Q_repeat_negative_empty; Q_string_indexof_fromindex_ignored;
    Q_slice_negative_start_zero; Q_startswith_position_ignored;
    Q_lastindexof_nan_zero; Q_array_sort_numeric_default;
    Q_splice_negative_delcount_deletes; Q_array_indexof_nan_found;
    Q_array_includes_strict_nan; Q_unshift_returns_undefined;
    Q_join_prints_null_undefined; Q_reduce_empty_returns_undefined;
    Q_flat_ignores_depth; Q_array_fill_skips_last;
    Q_tostring_radix_no_rangeerror; Q_toprecision_zero_accepted;
    Q_parseint_no_hex_prefix; Q_parsefloat_trailing_nan;
    Q_number_isinteger_coerces; Q_freeze_array_elements_writable;
    Q_keys_includes_nonenumerable; Q_getownpropertynames_sorted;
    Q_defineproperty_defaults_writable; Q_assign_skips_numeric_keys;
    Q_hasownproperty_walks_proto; Q_delete_nonconfigurable_succeeds;
    Q_json_stringify_undefined_string; Q_json_parse_trailing_comma;
    Q_json_stringify_nan_literal; Q_regex_dot_matches_newline;
    Q_regex_ignorecase_broken; Q_regex_class_negation_broken;
    Q_typedarray_oob_write_crash; Q_uint8clamped_wraps;
    Q_dataview_no_bounds_check; Q_typedarray_fill_no_coerce;
    Q_eval_expr_returns_undefined; Q_eval_string_result_quoted;
    Q_codegen_neg_zero_positive; Q_codegen_mod_sign_wrong;
    Q_codegen_shift_count_unmasked; Q_codegen_ushr_signed;
    Q_codegen_string_relational_numeric; Q_codegen_null_eq_undefined_false;
    Q_codegen_plus_bool_concat; Q_opt_int_add_overflow_wraps;
    Q_opt_loop_strconcat_drops; Q_strict_undeclared_assign_silent;
    Q_strict_this_is_global; Q_strict_delete_unqualified_accepted;
    Q_strict_dup_params_accepted;
  ]

let to_string (q : t) =
  match q with
  | Q_substr_undefined_length_empty -> "substr-undefined-length-empty"
  | Q_defineproperty_array_length_no_typeerror -> "defineproperty-array-length-no-typeerror"
  | Q_array_reverse_fill_quadratic -> "array-reverse-fill-quadratic"
  | Q_uint32array_fractional_length_typeerror -> "uint32array-fractional-length-typeerror"
  | Q_tofixed_no_rangeerror -> "tofixed-no-rangeerror"
  | Q_typedarray_set_string_typeerror -> "typedarray-set-string-typeerror"
  | Q_bool_prop_appends_to_array -> "bool-prop-appends-to-array"
  | Q_eval_for_missing_body_accepted -> "eval-for-missing-body-accepted"
  | Q_split_regexp_anchor_bug -> "split-regexp-anchor-bug"
  | Q_normalize_empty_crash -> "normalize-empty-crash"
  | Q_seal_string_object_crash -> "seal-string-object-crash"
  | Q_string_big_null_no_typeerror -> "string-big-null-no-typeerror"
  | Q_regexp_lastindex_nonwritable_silent -> "regexp-lastindex-nonwritable-silent"
  | Q_named_funcexpr_binding_mutable -> "named-funcexpr-binding-mutable"
  | Q_replace_dollar_group_literal -> "replace-dollar-group-literal"
  | Q_replace_fn_missing_offset -> "replace-fn-missing-offset"
  | Q_replace_undefined_search_noop -> "replace-undefined-search-noop"
  | Q_replace_empty_pattern_skips -> "replace-empty-pattern-skips"
  | Q_charat_negative_wraps -> "charat-negative-wraps"
  | Q_padstart_overlong_truncates -> "padstart-overlong-truncates"
  | Q_trim_missing_vt -> "trim-missing-vt"
  | Q_repeat_negative_empty -> "repeat-negative-empty"
  | Q_string_indexof_fromindex_ignored -> "string-indexof-fromindex-ignored"
  | Q_slice_negative_start_zero -> "slice-negative-start-zero"
  | Q_startswith_position_ignored -> "startswith-position-ignored"
  | Q_lastindexof_nan_zero -> "lastindexof-nan-zero"
  | Q_array_sort_numeric_default -> "array-sort-numeric-default"
  | Q_splice_negative_delcount_deletes -> "splice-negative-delcount-deletes"
  | Q_array_indexof_nan_found -> "array-indexof-nan-found"
  | Q_array_includes_strict_nan -> "array-includes-strict-nan"
  | Q_unshift_returns_undefined -> "unshift-returns-undefined"
  | Q_join_prints_null_undefined -> "join-prints-null-undefined"
  | Q_reduce_empty_returns_undefined -> "reduce-empty-returns-undefined"
  | Q_flat_ignores_depth -> "flat-ignores-depth"
  | Q_array_fill_skips_last -> "array-fill-skips-last"
  | Q_tostring_radix_no_rangeerror -> "tostring-radix-no-rangeerror"
  | Q_toprecision_zero_accepted -> "toprecision-zero-accepted"
  | Q_parseint_no_hex_prefix -> "parseint-no-hex-prefix"
  | Q_parsefloat_trailing_nan -> "parsefloat-trailing-nan"
  | Q_number_isinteger_coerces -> "number-isinteger-coerces"
  | Q_freeze_array_elements_writable -> "freeze-array-elements-writable"
  | Q_keys_includes_nonenumerable -> "keys-includes-nonenumerable"
  | Q_getownpropertynames_sorted -> "getownpropertynames-sorted"
  | Q_defineproperty_defaults_writable -> "defineproperty-defaults-writable"
  | Q_assign_skips_numeric_keys -> "assign-skips-numeric-keys"
  | Q_hasownproperty_walks_proto -> "hasownproperty-walks-proto"
  | Q_delete_nonconfigurable_succeeds -> "delete-nonconfigurable-succeeds"
  | Q_json_stringify_undefined_string -> "json-stringify-undefined-string"
  | Q_json_parse_trailing_comma -> "json-parse-trailing-comma"
  | Q_json_stringify_nan_literal -> "json-stringify-nan-literal"
  | Q_regex_dot_matches_newline -> "regex-dot-matches-newline"
  | Q_regex_ignorecase_broken -> "regex-ignorecase-broken"
  | Q_regex_class_negation_broken -> "regex-class-negation-broken"
  | Q_typedarray_oob_write_crash -> "typedarray-oob-write-crash"
  | Q_uint8clamped_wraps -> "uint8clamped-wraps"
  | Q_dataview_no_bounds_check -> "dataview-no-bounds-check"
  | Q_typedarray_fill_no_coerce -> "typedarray-fill-no-coerce"
  | Q_eval_expr_returns_undefined -> "eval-expr-returns-undefined"
  | Q_eval_string_result_quoted -> "eval-string-result-quoted"
  | Q_codegen_neg_zero_positive -> "codegen-neg-zero-positive"
  | Q_codegen_mod_sign_wrong -> "codegen-mod-sign-wrong"
  | Q_codegen_shift_count_unmasked -> "codegen-shift-count-unmasked"
  | Q_codegen_ushr_signed -> "codegen-ushr-signed"
  | Q_codegen_string_relational_numeric -> "codegen-string-relational-numeric"
  | Q_codegen_null_eq_undefined_false -> "codegen-null-eq-undefined-false"
  | Q_codegen_plus_bool_concat -> "codegen-plus-bool-concat"
  | Q_opt_int_add_overflow_wraps -> "opt-int-add-overflow-wraps"
  | Q_opt_loop_strconcat_drops -> "opt-loop-strconcat-drops"
  | Q_strict_undeclared_assign_silent -> "strict-undeclared-assign-silent"
  | Q_strict_this_is_global -> "strict-this-is-global"
  | Q_strict_delete_unqualified_accepted -> "strict-delete-unqualified-accepted"
  | Q_strict_dup_params_accepted -> "strict-dup-params-accepted"

let of_string s =
  List.find_opt (fun q -> to_string q = s) all

let count = List.length all

(* Stable catalogue position, used to pack quirk sets into machine words.
   An explicit match (not a Hashtbl over [all]): the interpreter consults
   this at every quirk checkpoint on the execution hot path, and a constant
   constructor compiles to its tag, so the whole function is one jump
   table. [test_properties] asserts the match agrees with the position in
   [all] for every constructor. *)
let index : t -> int = function
  | Q_substr_undefined_length_empty -> 0
  | Q_defineproperty_array_length_no_typeerror -> 1
  | Q_array_reverse_fill_quadratic -> 2
  | Q_uint32array_fractional_length_typeerror -> 3
  | Q_tofixed_no_rangeerror -> 4
  | Q_typedarray_set_string_typeerror -> 5
  | Q_bool_prop_appends_to_array -> 6
  | Q_eval_for_missing_body_accepted -> 7
  | Q_split_regexp_anchor_bug -> 8
  | Q_normalize_empty_crash -> 9
  | Q_seal_string_object_crash -> 10
  | Q_string_big_null_no_typeerror -> 11
  | Q_regexp_lastindex_nonwritable_silent -> 12
  | Q_named_funcexpr_binding_mutable -> 13
  | Q_replace_dollar_group_literal -> 14
  | Q_replace_fn_missing_offset -> 15
  | Q_replace_undefined_search_noop -> 16
  | Q_replace_empty_pattern_skips -> 17
  | Q_charat_negative_wraps -> 18
  | Q_padstart_overlong_truncates -> 19
  | Q_trim_missing_vt -> 20
  | Q_repeat_negative_empty -> 21
  | Q_string_indexof_fromindex_ignored -> 22
  | Q_slice_negative_start_zero -> 23
  | Q_startswith_position_ignored -> 24
  | Q_lastindexof_nan_zero -> 25
  | Q_array_sort_numeric_default -> 26
  | Q_splice_negative_delcount_deletes -> 27
  | Q_array_indexof_nan_found -> 28
  | Q_array_includes_strict_nan -> 29
  | Q_unshift_returns_undefined -> 30
  | Q_join_prints_null_undefined -> 31
  | Q_reduce_empty_returns_undefined -> 32
  | Q_flat_ignores_depth -> 33
  | Q_array_fill_skips_last -> 34
  | Q_tostring_radix_no_rangeerror -> 35
  | Q_toprecision_zero_accepted -> 36
  | Q_parseint_no_hex_prefix -> 37
  | Q_parsefloat_trailing_nan -> 38
  | Q_number_isinteger_coerces -> 39
  | Q_freeze_array_elements_writable -> 40
  | Q_keys_includes_nonenumerable -> 41
  | Q_getownpropertynames_sorted -> 42
  | Q_defineproperty_defaults_writable -> 43
  | Q_assign_skips_numeric_keys -> 44
  | Q_hasownproperty_walks_proto -> 45
  | Q_delete_nonconfigurable_succeeds -> 46
  | Q_json_stringify_undefined_string -> 47
  | Q_json_parse_trailing_comma -> 48
  | Q_json_stringify_nan_literal -> 49
  | Q_regex_dot_matches_newline -> 50
  | Q_regex_ignorecase_broken -> 51
  | Q_regex_class_negation_broken -> 52
  | Q_typedarray_oob_write_crash -> 53
  | Q_uint8clamped_wraps -> 54
  | Q_dataview_no_bounds_check -> 55
  | Q_typedarray_fill_no_coerce -> 56
  | Q_eval_expr_returns_undefined -> 57
  | Q_eval_string_result_quoted -> 58
  | Q_codegen_neg_zero_positive -> 59
  | Q_codegen_mod_sign_wrong -> 60
  | Q_codegen_shift_count_unmasked -> 61
  | Q_codegen_ushr_signed -> 62
  | Q_codegen_string_relational_numeric -> 63
  | Q_codegen_null_eq_undefined_false -> 64
  | Q_codegen_plus_bool_concat -> 65
  | Q_opt_int_add_overflow_wraps -> 66
  | Q_opt_loop_strconcat_drops -> 67
  | Q_strict_undeclared_assign_silent -> 68
  | Q_strict_this_is_global -> 69
  | Q_strict_delete_unqualified_accepted -> 70
  | Q_strict_dup_params_accepted -> 71

module Set = Stdlib.Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

(* Two-word bitset over the catalogue. The execution-sharing layer performs
   set algebra (intersect, compare) per testbed per case; on balanced trees
   those operations allocate and walk, on packed words they are a couple of
   integer instructions. The catalogue holds 73 quirks, so two 62-bit words
   cover it with room to grow. *)
module Bits = struct
  type t = int * int

  let empty : t = (0, 0)

  let add q ((lo, hi) : t) : t =
    let i = index q in
    if i < 62 then (lo lor (1 lsl i), hi) else (lo, hi lor (1 lsl (i - 62)))

  let singleton q : t = add q empty

  let remove q ((lo, hi) : t) : t =
    let i = index q in
    if i < 62 then (lo land lnot (1 lsl i), hi)
    else (lo, hi land lnot (1 lsl (i - 62)))

  let of_set (s : Set.t) : t = Set.fold add s empty
  let inter ((a, b) : t) ((c, d) : t) : t = (a land c, b land d)
  let union ((a, b) : t) ((c, d) : t) : t = (a lor c, b lor d)
  let diff ((a, b) : t) ((c, d) : t) : t = (a land lnot c, b land lnot d)
  let equal ((a, b) : t) ((c, d) : t) = a = c && b = d
  let is_empty ((a, b) : t) = a = 0 && b = 0

  (* a ⊆ b *)
  let subset ((a, b) : t) ((c, d) : t) = a land lnot c = 0 && b land lnot d = 0

  let mem q ((lo, hi) : t) =
    let i = index q in
    if i < 62 then lo land (1 lsl i) <> 0 else hi land (1 lsl (i - 62)) <> 0

  (* Rebuild the balanced-tree form — the report-boundary conversion. One
     pass over the catalogue, so cost is O(|catalogue|) regardless of how
     many executions shared the packed form. *)
  let to_set (b : t) : Set.t =
    List.fold_left (fun acc q -> if mem q b then Set.add q acc else acc)
      Set.empty all

  let cardinal ((lo, hi) : t) =
    let rec pop n x = if x = 0 then n else pop (n + 1) (x land (x - 1)) in
    pop 0 lo + pop 0 hi
end
