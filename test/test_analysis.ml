(* The static-analysis screening pass: scope resolution, early errors,
   determinism lint, screening verdicts, and the campaign integration
   (screened-out programs must never reach differential execution). *)

open Helpers
module A = Analysis
module S = Analysis.Scope
module E = Analysis.Early_errors
module L = Analysis.Lint

let parse src = Jsparse.Parser.parse_program src
let free src = S.free_variables (parse src)

(* --- scope resolution --- *)

let scope_var_hoisting () =
  Alcotest.(check (list string)) "var hoists to function scope" []
    (free {|print(typeof x); var x = 1;|});
  Alcotest.(check (list string)) "function declarations hoist" []
    (free {|print(f()); function f() { return 1; }|});
  Alcotest.(check (list string)) "var inside block hoists out" []
    (free {|if (1) { var y = 2; } print(y);|})

let scope_function_boundaries () =
  Alcotest.(check (list string)) "params bound inside their function only"
    [ "p" ]
    (free {|function h(p) { return p; } print(h(1) + p);|});
  Alcotest.(check (list string)) "shadowing param hides outer free name" []
    (free {|var a = 1; function g(a) { return a; } print(g(2));|});
  Alcotest.(check (list string)) "inner var does not leak out" [ "q" ]
    (free {|function f() { var q = 1; return q; } print(f() + q);|})

let scope_lexical_blocks () =
  Alcotest.(check (list string)) "let is block-scoped" [ "b" ]
    (free {|if (1) { let b = 1; } print(b);|});
  Alcotest.(check (list string)) "for-let head scoped to the loop" [ "i" ]
    (free {|for (let i = 0; i < 2; i++) { print(i); } print(i);|});
  Alcotest.(check (list string)) "catch param bound in its clause" [ "foo" ]
    (free {|try { foo(); } catch (e) { print(e); }|})

let scope_free_order () =
  Alcotest.(check (list string)) "first-reference order" [ "z"; "y" ]
    (free {|print(z + y); print(y + z);|});
  Alcotest.(check (list string)) "builtins are not free" []
    (free {|print(Math.abs(JSON.stringify([NaN, undefined])));|})

let scope_binding_table () =
  let r = S.resolve (parse {|var a = 1;
let b = 2;
const c = 3;
function f(p) { return p; }
try { f(a); } catch (err) { print(err); }
print(a + b + c);|}) in
  let kind name =
    (List.find (fun (b : S.binding) -> b.S.b_name = name) r.S.res_bindings)
      .S.b_kind
  in
  Alcotest.(check string) "var" "var" (S.binding_kind_to_string (kind "a"));
  Alcotest.(check string) "let" "let" (S.binding_kind_to_string (kind "b"));
  Alcotest.(check string) "const" "const" (S.binding_kind_to_string (kind "c"));
  Alcotest.(check string) "func" "function" (S.binding_kind_to_string (kind "f"));
  Alcotest.(check string) "param" "param" (S.binding_kind_to_string (kind "p"));
  Alcotest.(check string) "catch" "catch" (S.binding_kind_to_string (kind "err"));
  Alcotest.(check bool) "several scopes" true (r.S.res_scopes >= 3);
  Alcotest.(check (list string)) "no issues" []
    (List.map S.issue_to_string r.S.res_issues)

let scope_tdz_function_boundary () =
  (* a reference from inside a function that is merely *declared* before
     the let is not a TDZ violation: the call happens after binding *)
  let r = S.resolve (parse {|function g() { return t; } let t = 1; print(g());|}) in
  Alcotest.(check (list string)) "no TDZ across function boundary" []
    (List.map S.issue_to_string r.S.res_issues);
  Alcotest.(check (list string)) "t is not free" [] r.S.res_free

(* --- early errors: each rule, positive and negative --- *)

let rules src = List.map (fun e -> E.rule_to_string e.E.ee_rule) (E.check (parse src))
let rules_strict src =
  List.map (fun e -> E.rule_to_string e.E.ee_rule)
    (E.check ~strict:true (parse src))
let has rule l = List.mem rule l

let ee_duplicate_lexical () =
  Alcotest.(check bool) "let/let" true
    (has "duplicate-lexical-declaration" (rules {|let a = 1; let a = 2;|}));
  Alcotest.(check bool) "let/var clash" true
    (has "duplicate-lexical-declaration" (rules {|let y = 1; var y = 2;|}));
  Alcotest.(check bool) "var/var is legal" false
    (has "duplicate-lexical-declaration" (rules {|var a = 1; var a = 2;|}));
  Alcotest.(check bool) "same name in sibling blocks is legal" false
    (has "duplicate-lexical-declaration"
       (rules {|if (1) { let a = 1; } else { let a = 2; }|}))

let ee_const_assign () =
  Alcotest.(check bool) "assignment to const" true
    (has "assignment-to-const" (rules {|const c = 1; c = 2;|}));
  Alcotest.(check bool) "update of const" true
    (has "assignment-to-const" (rules {|const c = 1; c++;|}));
  Alcotest.(check bool) "let assignment is legal" false
    (has "assignment-to-const" (rules {|let l = 1; l = 2;|}))

let ee_tdz () =
  Alcotest.(check bool) "use before let" true
    (has "use-before-declaration" (rules {|print(x); let x = 1;|}));
  Alcotest.(check bool) "let x = x" true
    (has "use-before-declaration" (rules {|let x = x;|}));
  Alcotest.(check bool) "use after let is legal" false
    (has "use-before-declaration" (rules {|let x = 1; print(x);|}))

let ee_break_continue () =
  Alcotest.(check bool) "break outside" true
    (has "break-outside-loop" (rules {|break;|}));
  Alcotest.(check bool) "break in loop is legal" false
    (has "break-outside-loop" (rules {|while (0) { break; }|}));
  Alcotest.(check bool) "break in switch is legal" false
    (has "break-outside-loop" (rules {|switch (1) { case 1: break; }|}));
  Alcotest.(check bool) "continue outside" true
    (has "continue-outside-loop" (rules {|continue;|}));
  Alcotest.(check bool) "continue in switch" true
    (has "continue-outside-loop" (rules {|switch (1) { case 1: continue; }|}));
  Alcotest.(check bool) "continue in switch inside loop is legal" false
    (has "continue-outside-loop"
       (rules {|while (0) { switch (1) { case 1: continue; } }|}))

let ee_labels () =
  Alcotest.(check bool) "break to unbound label" true
    (has "unknown-label" (rules {|a: { break b; }|}));
  Alcotest.(check bool) "continue to non-loop label" true
    (has "unknown-label" (rules {|a: { continue a; }|}));
  Alcotest.(check bool) "break to own label is legal" false
    (has "unknown-label" (rules {|a: { break a; }|}));
  Alcotest.(check bool) "continue to loop label is legal" false
    (has "unknown-label" (rules {|a: while (0) { continue a; }|}))

let ee_return_outside () =
  Alcotest.(check bool) "top-level return" true
    (has "return-outside-function" (rules {|return 1;|}));
  Alcotest.(check bool) "return in function is legal" false
    (has "return-outside-function" (rules {|function f() { return 1; }|}))

let ee_strict_rules () =
  Alcotest.(check bool) "strict duplicate params" true
    (has "strict-duplicate-params" (rules_strict {|function f(a, a) { return a; }|}));
  Alcotest.(check bool) "sloppy duplicate params are legal" false
    (has "strict-duplicate-params" (rules {|function f(a, a) { return a; }|}));
  Alcotest.(check bool) "strict delete of a name" true
    (has "strict-delete-unqualified" (rules_strict {|var x = 1; delete x;|}));
  Alcotest.(check bool) "strict delete of a property is legal" false
    (has "strict-delete-unqualified"
       (rules_strict {|var o = { p: 1 }; delete o.p;|}));
  Alcotest.(check bool) "sloppy delete of a name is legal" false
    (has "strict-delete-unqualified" (rules {|var x = 1; delete x;|}));
  (* the reference parser rejects these itself; a quirky front end that
     accepts them (the seeded strict-parser bugs) is exactly the case the
     analysis catches — and the "use strict" prologue turns the strict
     rules on by default *)
  let opts =
    { Jsparse.Parser.default_options with accept_dup_params_strict = true }
  in
  let p =
    Jsparse.Parser.parse_program ~opts
      {|"use strict";
function f(a, a) { return a; }|}
  in
  Alcotest.(check bool) "prologue enables strict rules" true
    (has "strict-duplicate-params"
       (List.map (fun e -> E.rule_to_string e.E.ee_rule) (E.check p)))

(* --- determinism / triviality lint --- *)

let lint_findings src = List.map L.finding_to_string (L.lint (parse src))

let lint_nondeterminism () =
  Alcotest.(check bool) "Math.random" true
    (List.mem "nondeterministic call to Math.random"
       (lint_findings {|print(Math.random());|}));
  Alcotest.(check bool) "Date.now" true
    (lint_findings {|print(Date.now());|} <> []);
  Alcotest.(check bool) "new Date()" true
    (lint_findings {|var d = new Date(); print(d);|} <> []);
  Alcotest.(check (list string)) "new Date(ms) is deterministic" []
    (lint_findings {|var d = new Date(86400000); print(1);|})

let lint_observability () =
  Alcotest.(check bool) "pure arithmetic is inert" true
    (List.mem "no observable output" (lint_findings {|var x = 1; x = x + 2;|}));
  Alcotest.(check (list string)) "a call is observable" []
    (lint_findings {|print(1);|});
  Alcotest.(check (list string)) "a throw is observable" []
    (lint_findings {|throw 1;|})

(* --- screening verdicts --- *)

let verdict src =
  match A.screen ~strict:false src with
  | Ok (v, _) -> A.verdict_to_string v
  | Error msg -> Alcotest.failf "unexpected syntax error: %s" msg

let screening_rejects_degenerates () =
  (* at least ten distinct invalid/degenerate programs must be dropped *)
  let dropped =
    [
      {|let a = 1; let a = 2; print(a);|};
      {|let y = 1; var y = 2; print(y);|};
      {|const c = 1; c = 2; print(c);|};
      {|print(x); let x = 1;|};
      {|break;|};
      {|continue;|};
      {|return 1;|};
      {|a: { break b; }|};
      {|lab: print(1); continue lab;|};
      {|var x = 1; x = x + 2;|};
      {|var r = Math.random(); print(r);|};
      {|print(Date.now());|};
      {|var d = new Date(); print(d);|};
      {|if (1) { let a = 1; let a = 2; } print(0);|};
    ]
  in
  List.iter
    (fun src ->
      let v = verdict src in
      Alcotest.(check bool)
        (Printf.sprintf "dropped: %s (got %s)" src v)
        true
        (String.length v >= 4 && String.sub v 0 4 = "drop"))
    dropped;
  Alcotest.(check bool) "at least ten distinct programs" true
    (List.length (List.sort_uniq compare dropped) >= 10)

let screening_keeps_signal () =
  Alcotest.(check string) "plain program kept" "keep" (verdict {|print(1 + 2);|});
  (* strict-only early errors are differential signal for the seeded
     strict-parser quirks: sloppy code must survive the screen *)
  Alcotest.(check string) "sloppy dup params kept" "keep"
    (verdict {|function f(a, a) { return a; } print(f(1, 2));|});
  Alcotest.(check string) "sloppy delete kept" "keep"
    (verdict {|var x = 1; print(delete x);|});
  (match A.screen ~strict:false {|function f(a, a) { return a; } print(f(1, 2));|} with
  | Ok (_, diag) ->
      Alcotest.(check bool) "strict-only diagnostics reported" true
        (diag.A.d_strict_only <> [])
  | Error m -> Alcotest.failf "unexpected syntax error: %s" m);
  (* free variables are repairable, not fatal *)
  let v = verdict {|print(q + 1);|} in
  Alcotest.(check string) "free variable repairs" "repair:unbound:q" v

let screening_repair_executes () =
  let p = parse {|print(a + b);|} in
  let repaired = A.bind_free p in
  Alcotest.(check (list string)) "repair closes the program" []
    (S.free_variables repaired);
  let src = Jsast.Printer.program_to_string repaired in
  Alcotest.(check bool) "repaired program runs" true
    ((Jsinterp.Run.run src).Jsinterp.Run.r_status = Jsinterp.Run.Sts_normal)

let screening_accepts_working_corpus () =
  (* every corpus/seed program that executes successfully today must
     survive the screen: the pass may only reject dead weight *)
  let ok = ref 0 in
  List.iter
    (fun src ->
      let r = Jsinterp.Run.run ~fuel:200_000 src in
      if
        r.Jsinterp.Run.r_parse_error = None
        && r.Jsinterp.Run.r_status = Jsinterp.Run.Sts_normal
        && r.Jsinterp.Run.r_output <> ""
      then begin
        incr ok;
        match A.screen ~strict:false src with
        | Error m -> Alcotest.failf "screen rejects parseable program: %s" m
        | Ok (A.Drop reason, _) ->
            Alcotest.failf "screen drops a working program (%s):\n%s" reason src
        | Ok ((A.Keep | A.Repair _), _) -> ()
      end)
    (Lm.Js_corpus.programs @ Baselines.Seeds.common @ Baselines.Seeds.programs);
  Alcotest.(check bool) "corpus sample is non-trivial" true (!ok >= 50)

let screen_case_bypasses_invalid_syntax () =
  (* deliberately invalid programs are parser-exercise inputs and carry
     their own differential signal; the semantic screen must not eat them *)
  let tc = Comfort.Testcase.make {|var = ;|} in
  Alcotest.(check bool) "case is syntax-invalid" false
    tc.Comfort.Testcase.tc_syntax_valid;
  match Comfort.Campaign.screen_case tc with
  | Comfort.Campaign.S_kept tc' ->
      Alcotest.(check string) "kept untouched" tc.Comfort.Testcase.tc_source
        tc'.Comfort.Testcase.tc_source
  | _ -> Alcotest.fail "invalid-syntax case was not passed through"

(* --- campaign integration --- *)

let mk src =
  Comfort.Testcase.make ~provenance:(Comfort.Testcase.P_fuzzer "Test") src

let const_fuzzer name srcs =
  let i = ref 0 in
  {
    Comfort.Campaign.fz_name = name;
    fz_raw = None;
    fz_batch =
      (fun n ->
        List.init n (fun _ ->
            let src = List.nth srcs (!i mod List.length srcs) in
            incr i;
            mk src));
  }

let testbeds = lazy (Engines.Engine.latest_testbeds ())

let campaign_screen_blocks_execution () =
  (* a fuzzer that only emits droppable programs: with screening on,
     nothing must ever reach Difftest.run_case — the timeline ticks once
     per executed case, so it must stay empty *)
  let fz = const_fuzzer "Poison" [ {|var r = Math.random(); print(r);|} ] in
  let res =
    Comfort.Campaign.run ~testbeds:(Lazy.force testbeds) ~budget:10 fz
  in
  Alcotest.(check int) "no case executed" 0 res.Comfort.Campaign.cp_cases_run;
  Alcotest.(check (list (pair int int))) "timeline empty" []
    res.Comfort.Campaign.cp_timeline;
  Alcotest.(check bool) "screened count reported" true
    (res.Comfort.Campaign.cp_screened_out > 0);
  Alcotest.(check bool) "reason histogram names the lint" true
    (List.mem_assoc "nondeterministic:Math.random"
       res.Comfort.Campaign.cp_screen_reasons)

let campaign_screen_redraws_to_budget () =
  (* half the stream is droppable: replacement draws must still fill the
     execution budget *)
  let fz =
    const_fuzzer "Mixed" [ {|print(1 + 2);|}; {|let a = 1; let a = 2; print(a);|} ]
  in
  let res =
    Comfort.Campaign.run ~testbeds:(Lazy.force testbeds) ~budget:10 fz
  in
  Alcotest.(check int) "budget still honoured" 10
    res.Comfort.Campaign.cp_cases_run;
  Alcotest.(check bool) "drops counted" true
    (res.Comfort.Campaign.cp_screened_out >= 5);
  (* the ablation: screening off runs everything as before *)
  let res' =
    Comfort.Campaign.run ~testbeds:(Lazy.force testbeds) ~budget:10
      ~screen:false fz
  in
  Alcotest.(check int) "no screening when disabled" 0
    res'.Comfort.Campaign.cp_screened_out;
  Alcotest.(check int) "budget honoured without screen" 10
    res'.Comfort.Campaign.cp_cases_run

let campaign_screen_repairs () =
  let fz = const_fuzzer "Unbound" [ {|print(q + 1);|} ] in
  let res =
    Comfort.Campaign.run ~testbeds:(Lazy.force testbeds) ~budget:6 fz
  in
  Alcotest.(check int) "budget honoured" 6 res.Comfort.Campaign.cp_cases_run;
  Alcotest.(check int) "every case repaired" 6 res.Comfort.Campaign.cp_repaired

let comfort_campaign_screens () =
  (* the default Comfort fuzzer, screened: some of its output is dropped
     (the ISSUE acceptance criterion) and the campaign still finds bugs *)
  let fz = Comfort.Campaign.comfort_fuzzer ~seed:11 () in
  let res = Comfort.Campaign.run ~budget:300 fz in
  Alcotest.(check int) "budget honoured" 300 res.Comfort.Campaign.cp_cases_run;
  Alcotest.(check bool) "nonzero screened count" true
    (res.Comfort.Campaign.cp_screened_out > 0);
  Alcotest.(check bool) "reason histogram populated" true
    (res.Comfort.Campaign.cp_screen_reasons <> []);
  let summary = Comfort.Report.screening_summary res in
  Alcotest.(check bool) "summary leads with totals" true
    (List.mem_assoc "screened out" summary && List.mem_assoc "repaired" summary)

let metrics_screen_stats () =
  let st =
    Comfort.Metrics.screen_stats
      (const_fuzzer "Poison" [ {|var r = Math.random(); print(r);|} ])
      ~n:20
  in
  Alcotest.(check int) "all dropped" 20 st.Comfort.Metrics.sc_dropped;
  let st' =
    Comfort.Metrics.screen_stats (Comfort.Campaign.comfort_fuzzer ~seed:3 ()) ~n:60
  in
  Alcotest.(check int) "partition of the sample" st'.Comfort.Metrics.sc_samples
    (st'.Comfort.Metrics.sc_kept + st'.Comfort.Metrics.sc_repaired
   + st'.Comfort.Metrics.sc_dropped)

let suite =
  [
    case "scope: var and function hoisting" scope_var_hoisting;
    case "scope: function boundaries" scope_function_boundaries;
    case "scope: lexical blocks" scope_lexical_blocks;
    case "scope: free-variable order and builtins" scope_free_order;
    case "scope: binding table" scope_binding_table;
    case "scope: TDZ stops at function boundaries" scope_tdz_function_boundary;
    case "early errors: duplicate lexical" ee_duplicate_lexical;
    case "early errors: const assignment" ee_const_assign;
    case "early errors: TDZ" ee_tdz;
    case "early errors: break/continue placement" ee_break_continue;
    case "early errors: labels" ee_labels;
    case "early errors: return placement" ee_return_outside;
    case "early errors: strict-mode rules" ee_strict_rules;
    case "lint: nondeterminism" lint_nondeterminism;
    case "lint: observability" lint_observability;
    case "screen: rejects degenerate programs" screening_rejects_degenerates;
    case "screen: keeps differential signal" screening_keeps_signal;
    case "screen: repair closes and runs" screening_repair_executes;
    case "screen: accepts working corpus programs" screening_accepts_working_corpus;
    case "screen: invalid syntax passes through" screen_case_bypasses_invalid_syntax;
    case "campaign: screen blocks execution" campaign_screen_blocks_execution;
    case "campaign: redraws fill the budget" campaign_screen_redraws_to_budget;
    case "campaign: repairs unbound cases" campaign_screen_repairs;
    case "campaign: comfort fuzzer is screened" comfort_campaign_screens;
    case "metrics: screening statistics" metrics_screen_stats;
  ]
