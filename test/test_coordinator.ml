(* Process-isolated campaign workers (Coordinator, DESIGN.md §14).

   Two layers of properties:

   - pool mechanics, exercised with toy workers: replies are consumed in
     submission order; a worker that crashes mid-task is respawned and
     the task re-dispatched transparently; a wedged worker is reaped by
     the wall-clock watchdog within its budget and the poisoned task
     lands in the failure lane instead of stalling the run; a worker
     exception travels back as a string; the respawn budget bounds how
     long the pool keeps reviving a dying fleet ({!Exhausted});

   - the determinism contract, exercised with real campaigns: under a
     [worker_kill] fault plan that hard-SIGKILLs real worker processes,
     the campaign report is identical at workers 0/1/2/4 (discoveries,
     timeline, fault statistics, quarantine, folded interpreter
     counters); a campaign halted at a checkpoint under one worker
     count resumes under another to the uninterrupted result; budget
     exhaustion degrades to an aborted partial report, mirroring the
     supervisor's pool-exhaustion semantics; and with fork disabled the
     same [~workers] request silently degrades to the in-process
     executor with an unchanged report. *)

module Campaign = Comfort.Campaign
module Coordinator = Comfort.Coordinator
module Faultplan = Comfort.Supervisor.Faultplan

let () = Unix.putenv "COMFORT_FAULTS" ""

(* Pool tests fork; on a host without fork they can only be skipped.
   (CI runs them on Linux unconditionally.) *)
let requires_fork () =
  if not (Coordinator.available ()) then
    Alcotest.skip ()

(* --- pool mechanics --- *)

let pool_runs_in_order () =
  requires_fork ();
  Coordinator.with_pool ~workers:3
    ~worker:(fun x -> x * x)
    (fun pool ->
      let seen = ref [] in
      Coordinator.run_ordered pool (List.init 24 Fun.id)
        ~consume:(fun i x y ->
          Alcotest.(check int) "task order" i x;
          Alcotest.(check int) "reply" (x * x) y;
          seen := i :: !seen);
      Alcotest.(check int) "all consumed" 24 (List.length !seen);
      Alcotest.(check bool) "in submission order" true
        (!seen = List.rev (List.init 24 Fun.id)))

let crashed_worker_respawned_task_redispatched () =
  requires_fork ();
  (* task 5 kills its worker once — flagged through the filesystem so
     the retry (in a fresh process) sees it — then succeeds; the run
     must complete with every reply intact and one respawn charged *)
  let flag = Filename.temp_file "comfort-coord" ".flag" in
  Sys.remove flag;
  let r0 = Coordinator.stat_respawns () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove flag with Sys_error _ -> ())
    (fun () ->
      Coordinator.with_pool ~workers:2
        ~worker:(fun x ->
          if x = 5 && not (Sys.file_exists flag) then begin
            let oc = open_out flag in
            close_out oc;
            Unix._exit 9
          end;
          x + 1)
        (fun pool ->
          let n = ref 0 in
          Coordinator.run_ordered pool (List.init 10 Fun.id)
            ~consume:(fun i _ y ->
              Alcotest.(check int) "reply survives the crash" (i + 1) y;
              incr n);
          Alcotest.(check int) "all consumed" 10 !n));
  Alcotest.(check bool) "the death cost at least one respawn" true
    (Coordinator.stat_respawns () - r0 >= 1)

let wedged_worker_reaped_within_budget () =
  requires_fork ();
  (* task 3 spins forever in an allocation-free loop (SIGALRM still
     interrupts it; the driver deadline would catch even a loop that
     blocked signals). With a 0.5s watchdog and one tolerated death the
     whole 6-task run must finish in seconds, with task 3 — and only
     task 3 — in the failure lane. *)
  let limits =
    {
      Coordinator.default_limits with
      li_watchdog_s = 0.5;
      li_task_deaths = 1;
      li_backoff_ms = 1;
    }
  in
  let h0 = Coordinator.stat_hangs () in
  let t0 = Unix.gettimeofday () in
  Coordinator.with_pool ~workers:2 ~limits
    ~worker:(fun x ->
      if x = 3 then (
        while true do
          ignore (Sys.opaque_identity 1)
        done;
        assert false)
      else x)
    (fun pool ->
      let failed = ref [] in
      Coordinator.run_ordered pool (List.init 6 Fun.id)
        ~on_task_fail:(fun i _ _ ->
          failed := i :: !failed;
          -1)
        ~consume:(fun i _ y ->
          if i = 3 then Alcotest.(check int) "poisoned task failed" (-1) y
          else Alcotest.(check int) "healthy task survives" i y);
      Alcotest.(check (list int)) "only the wedged task failed" [ 3 ] !failed);
  Alcotest.(check bool) "watchdog reap recorded" true
    (Coordinator.stat_hangs () - h0 >= 1);
  (* 2 tolerated deaths at ~0.5s each plus slack: nowhere near a stall *)
  Alcotest.(check bool) "reaped within the wall-clock budget" true
    (Unix.gettimeofday () -. t0 < 20.0)

let worker_exception_reaches_on_task_fail () =
  requires_fork ();
  Coordinator.with_pool ~workers:2
    ~worker:(fun x -> if x = 2 then failwith "boom-2" else x)
    (fun pool ->
      let msgs = ref [] in
      Coordinator.run_ordered pool (List.init 5 Fun.id)
        ~on_task_fail:(fun i _ msg ->
          msgs := (i, msg) :: !msgs;
          -1)
        ~consume:(fun _ _ _ -> ());
      match !msgs with
      | [ (2, msg) ] ->
          Alcotest.(check bool) "exception text shipped back" true
            (let lc = String.lowercase_ascii msg in
             String.length lc >= 6
             &&
             let rec find i =
               i + 6 <= String.length lc
               && (String.sub lc i 6 = "boom-2" || find (i + 1))
             in
             find 0)
      | other ->
          Alcotest.failf "want exactly task 2 failed, got %d failures"
            (List.length other))

let respawn_budget_exhausts () =
  requires_fork ();
  (* task 2 is lethal every time and the task-death tolerance is higher
     than the respawn budget: the pool must give up with Exhausted, not
     revive workers forever *)
  let limits =
    {
      Coordinator.default_limits with
      li_respawn_budget = 2;
      li_task_deaths = 10;
      li_backoff_ms = 1;
    }
  in
  match
    Coordinator.with_pool ~workers:2 ~limits
      ~worker:(fun x -> if x = 2 then Unix._exit 70 else x)
      (fun pool ->
        Coordinator.run_ordered pool (List.init 8 Fun.id)
          ~consume:(fun _ _ _ -> ()))
  with
  | () -> Alcotest.fail "a lethal task must exhaust the respawn budget"
  | exception Coordinator.Exhausted msg ->
      Alcotest.(check bool) "diagnostic is populated" true
        (String.length msg > 0)

(* --- the determinism contract, on real campaigns --- *)

(* worker_kill draws hard-SIGKILL the worker process mid-case (absorbed
   in-process at workers=0); crash/flaky keep the supervisor's retry and
   quarantine machinery live at the same time, so identity covers the
   interaction of both fault layers. *)
let kill_plan =
  lazy
    (match
       Faultplan.of_spec
         "seed=11;targets=Hermes|Rhino|Nashorn;worker_kill=0.25;crash=0.3;flaky=0.3"
     with
    | Ok p -> p
    | Error e -> failwith e)

let run_kill_chaos ?checkpoint ?halt_after ?worker_limits ~workers () =
  Campaign.run ~budget:12 ~jobs:1 ~workers
    ~faults:(Lazy.force kill_plan)
    ?checkpoint ?halt_after ?worker_limits
    (Campaign.comfort_fuzzer ~seed:23 ())

let campaign_identical_across_worker_counts () =
  requires_fork ();
  let base = run_kill_chaos ~workers:0 () in
  let k0 = Coordinator.stat_kills () in
  let r2 = run_kill_chaos ~workers:2 () in
  let kills = Coordinator.stat_kills () - k0 in
  Test_supervisor.check_results_equal "workers 0 vs 2" base r2;
  Alcotest.(check bool) "counters folded from children match" true
    (r2.Campaign.cp_reach_seeded = base.Campaign.cp_reach_seeded
    && r2.Campaign.cp_specialized = base.Campaign.cp_specialized
    && r2.Campaign.cp_cow_clones = base.Campaign.cp_cow_clones
    && r2.Campaign.cp_ic_hits = base.Campaign.cp_ic_hits);
  (* the fault plan really did hard-kill worker processes — this run
     exercised recovery, not a quiet pool *)
  Alcotest.(check bool) "real hard-kills occurred" true (kills > 0);
  Test_supervisor.check_results_equal "workers 0 vs 1" base
    (run_kill_chaos ~workers:1 ());
  Test_supervisor.check_results_equal "workers 0 vs 4" base
    (run_kill_chaos ~workers:4 ())

let campaign_halt_resume_across_worker_counts () =
  requires_fork ();
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      "comfort-test-worker-resume.ckpt"
  in
  let uninterrupted = run_kill_chaos ~workers:0 () in
  (* killed after 7 cases while running process-isolated... *)
  (match run_kill_chaos ~workers:2 ~checkpoint:(path, 5) ~halt_after:7 () with
  | _ -> Alcotest.fail "halt_after must raise"
  | exception Campaign.Halted { halted_at; _ } ->
      Alcotest.(check int) "halted where asked" 7 halted_at);
  (* ...and resumed under a different worker count entirely. The state
     is reloaded per resume: a thawed snapshot carries mutable filter
     tables, so each resume needs its own copy. *)
  let load () =
    match Campaign.Checkpoint.load path with
    | Error e -> Alcotest.failf "checkpoint unreadable: %s" e
    | Ok st -> st
  in
  Test_supervisor.check_results_equal "halt at workers=2, resume at workers=3"
    uninterrupted
    (Campaign.resume ~workers:3 (load ()));
  Test_supervisor.check_results_equal "halt at workers=2, resume in-process"
    uninterrupted
    (Campaign.resume ~workers:0 (load ()));
  Sys.remove path

let campaign_exhaustion_aborts_with_partial_report () =
  requires_fork ();
  (* a 0.1ms watchdog no differential sweep can beat: every dispatch is
     reaped as a hang, every reap is an unexpected death charging the
     tiny respawn budget, and the campaign must come back as an aborted
     partial report (PR 5's pool-exhaustion semantics), not raise.
     (Deliberate [worker_kill] deaths cannot exhaust the pool any more
     — they respawn free of charge — which the identity tests above
     rely on.) *)
  let worker_limits =
    {
      Coordinator.li_watchdog_s = 0.0001;
      li_task_deaths = 10;
      li_respawn_budget = 3;
      li_backoff_ms = 1;
    }
  in
  let res =
    Campaign.run ~budget:12 ~jobs:1 ~workers:2 ~worker_limits
      (Campaign.comfort_fuzzer ~seed:23 ())
  in
  match res.Campaign.cp_aborted with
  | Some msg ->
      Alcotest.(check bool) "abort names the worker pool" true
        (let lc = String.lowercase_ascii msg in
         let rec find i =
           i + 6 <= String.length lc
           && (String.sub lc i 6 = "worker" || find (i + 1))
         in
         find 0)
  | None -> Alcotest.fail "budget exhaustion must abort the campaign"

let no_fork_degrades_to_in_process () =
  (* the CI escape hatch: with COMFORT_NO_FORK set, the same ~workers
     request runs on the in-process executor with an unchanged report *)
  let base = run_kill_chaos ~workers:0 () in
  Unix.putenv "COMFORT_NO_FORK" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "COMFORT_NO_FORK" "")
    (fun () ->
      Alcotest.(check bool) "fork reported unavailable" false
        (Coordinator.available ());
      let r0 = Coordinator.stat_respawns () in
      Test_supervisor.check_results_equal "degraded vs in-process" base
        (run_kill_chaos ~workers:2 ());
      Alcotest.(check int) "no process was forked" r0
        (Coordinator.stat_respawns ()))

let suite =
  [
    Helpers.case "pool: replies consumed in submission order"
      pool_runs_in_order;
    Helpers.case "pool: crash -> respawn + re-dispatch, run completes"
      crashed_worker_respawned_task_redispatched;
    Helpers.case "pool: wedged worker reaped by watchdog"
      wedged_worker_reaped_within_budget;
    Helpers.case "pool: worker exception ships back as a string"
      worker_exception_reaches_on_task_fail;
    Helpers.case "pool: respawn budget exhaustion raises"
      respawn_budget_exhausts;
    Helpers.case "campaign: identical at workers 0/1/2/4 under worker_kill"
      campaign_identical_across_worker_counts;
    Helpers.case "campaign: halt + resume across worker counts"
      campaign_halt_resume_across_worker_counts;
    Helpers.case "campaign: pool exhaustion -> aborted partial report"
      campaign_exhaustion_aborts_with_partial_report;
    Helpers.case "campaign: COMFORT_NO_FORK degrades in-process"
      no_fork_degrades_to_in_process;
  ]
