(* Comfort core: datagen (Algorithm 1), difftest, reducer, bug filter,
   coverage, AST analyses. *)

open Helpers
module Ast = Jsast.Ast

(* --- Visit / Transform --- *)

let parse src = Jsparse.Parser.parse_program src

let call_site_extraction () =
  let p = parse {|var r = str.substr(1, 2); foo(3); var t = new Uint8Array(4); Object.keys(o);|} in
  let sites = Jsast.Visit.call_sites p in
  let callees = List.map (fun c -> c.Jsast.Visit.cs_callee) sites in
  Alcotest.(check (list string)) "callees in order"
    [ "substr"; "foo"; "Uint8Array"; "keys" ] callees;
  let substr = List.hd sites in
  Alcotest.(check (option string)) "receiver" (Some "str") substr.Jsast.Visit.cs_receiver;
  Alcotest.(check int) "substr args" 2 (List.length substr.Jsast.Visit.cs_args);
  let keys = List.nth sites 3 in
  Alcotest.(check (list string)) "dotted path" [ "Object"; "keys" ] keys.Jsast.Visit.cs_path

let free_ident_analysis () =
  let p = parse {|var a = 1; function f(x) { return x + b + Math.abs(c); } print(f(a));|} in
  let free = List.sort compare (Analysis.Scope.free_variables p) in
  Alcotest.(check (list string)) "free identifiers" [ "b"; "c" ] free;
  let p2 = parse {|try { foo(); } catch (err) { print(err); }|} in
  Alcotest.(check (list string)) "catch param bound" [ "foo" ]
    (Analysis.Scope.free_variables p2)

let static_counts () =
  let p = parse {|function f(x) { if (x) { return 1; } return 2; }
var g = function() { while (0) {} };
f(1);|} in
  Alcotest.(check int) "functions" 2 (Jsast.Visit.count_functions p);
  Alcotest.(check bool) "statements > 5" true (Jsast.Visit.count_statements p > 5);
  Alcotest.(check int) "branch arms: if(2) + while(2)" 4 (Jsast.Visit.count_branch_arms p)

let transform_replace () =
  let p = parse {|var x = 1; print(x + 2);|} in
  let p2 =
    Jsast.Transform.replace_var_init p ~name:"x" ~init:(Jsast.Builder.int 40)
  in
  Alcotest.(check string) "init replaced" "42\n"
    (Jsinterp.Run.output_of (Jsast.Printer.program_to_string p2));
  (* replace a specific expression by id *)
  let target = ref None in
  Jsast.Visit.iter_program
    ~fe:(fun e -> match e.Ast.e with Ast.Lit (Ast.Lnum 2.0) -> target := Some e.Ast.eid | _ -> ())
    p;
  let p3 =
    Jsast.Transform.replace_expr p ~eid:(Option.get !target)
      ~replacement:(Jsast.Builder.int 9)
  in
  Alcotest.(check string) "expr replaced" "10\n"
    (Jsinterp.Run.output_of (Jsast.Printer.program_to_string p3))

(* --- datagen --- *)

let dg () = Comfort.Datagen.create ~seed:3 ()

let datagen_driver_synthesis () =
  let src = {|function process(str, start, len) {
  var ret = str.substr(start, len);
  return ret;
}|} in
  let ms = Comfort.Datagen.mutants_of_program (dg ()) src in
  Alcotest.(check bool) "produces mutants" true (List.length ms >= 4);
  (* every mutant must parse and call process *)
  List.iter
    (fun (m : Comfort.Datagen.mutant) ->
      match parse m.Comfort.Datagen.m_source with
      | p ->
          Alcotest.(check bool) "mutant calls the function" true
            (List.exists
               (fun c -> c.Jsast.Visit.cs_path = [ "process" ])
               (Jsast.Visit.call_sites p))
      | exception Jsparse.Parser.Syntax_error (msg, _) ->
          Alcotest.failf "mutant does not parse (%s):\n%s" msg m.Comfort.Datagen.m_source)
    ms;
  (* the substr spec's undefined boundary must appear in some driver *)
  Alcotest.(check bool) "some driver passes undefined" true
    (List.exists
       (fun (m : Comfort.Datagen.mutant) ->
         Str_contains.contains m.Comfort.Datagen.m_source "= undefined")
       ms);
  (* and the guided ones carry the API name *)
  Alcotest.(check bool) "api recorded" true
    (List.exists
       (fun (m : Comfort.Datagen.mutant) ->
         m.Comfort.Datagen.m_api = "String.prototype.substr" && m.Comfort.Datagen.m_guided)
       ms)

let datagen_free_var_binding () =
  let src = {|var f = function(str) {
  var out = str.substring(a, b);
  return out;
};|} in
  let ms = Comfort.Datagen.mutants_of_program (dg ()) src in
  Alcotest.(check bool) "mutants exist" true (ms <> []);
  List.iter
    (fun (m : Comfort.Datagen.mutant) ->
      let p = parse m.Comfort.Datagen.m_source in
      Alcotest.(check (list string)) "no free identifiers remain" []
        (Analysis.Scope.free_variables p))
    ms

let datagen_observation_harness () =
  let src = {|function f(s) {
  var unused = s.substr(0, 2);
  return "fixed";
}|} in
  let ms = Comfort.Datagen.mutants_of_program (dg ()) src in
  (* even though the function discards the substr result, some mutant must
     make it observable *)
  Alcotest.(check bool) "observation harness present" true
    (List.exists
       (fun (m : Comfort.Datagen.mutant) ->
         Str_contains.contains m.Comfort.Datagen.m_source "__obs")
       ms)

let datagen_invalid_input () =
  Alcotest.(check int) "no mutants for syntax errors" 0
    (List.length (Comfort.Datagen.mutants_of_program (dg ()) "var = ;"))

let datagen_provenance () =
  let tc = Comfort.Testcase.make {|function f(num) { return num.toFixed(digits); }|} in
  let mutants = Comfort.Datagen.mutate (dg ()) tc in
  let guided, random =
    List.partition Comfort.Testcase.is_ecma_guided mutants
  in
  Alcotest.(check bool) "has boundary-guided mutants" true (guided <> []);
  Alcotest.(check bool) "has random-data mutants" true (random <> [])

(* --- difftest --- *)

let difftest_clean_case () =
  let tbs = Engines.Engine.latest_testbeds () in
  let report =
    Comfort.Difftest.run_case tbs (Comfort.Testcase.make {|print(1 + 1);|})
  in
  Alcotest.(check int) "no deviations" 0 (List.length report.Comfort.Difftest.cr_deviations);
  Alcotest.(check int) "all ten ran" 10 report.Comfort.Difftest.cr_tested

let difftest_flags_rhino () =
  let tbs = Engines.Engine.latest_testbeds () in
  let report =
    Comfort.Difftest.run_case tbs
      (Comfort.Testcase.make {|print("abcdef".substr(2, undefined));|})
  in
  match report.Comfort.Difftest.cr_deviations with
  | [ d ] ->
      Alcotest.(check string) "rhino deviates" "Rhino"
        (Engines.Registry.engine_name
           d.Comfort.Difftest.d_testbed.Engines.Engine.tb_config.Engines.Registry.cfg_engine);
      Alcotest.(check bool) "quirk fired" true
        (Jsinterp.Quirk.Set.mem Jsinterp.Quirk.Q_substr_undefined_length_empty
           d.Comfort.Difftest.d_fired);
      Alcotest.(check string) "kind" "WrongOutput"
        (Comfort.Difftest.deviation_kind_to_string d.Comfort.Difftest.d_kind)
  | ds -> Alcotest.failf "expected exactly one deviation, got %d" (List.length ds)

let difftest_crash_always_flagged () =
  let tbs = Engines.Engine.latest_testbeds () in
  let report =
    Comfort.Difftest.run_case tbs
      (Comfort.Testcase.make {|"".normalize(true);|})
  in
  Alcotest.(check bool) "QuickJS crash reported" true
    (List.exists
       (fun d -> d.Comfort.Difftest.d_kind = Comfort.Difftest.Dev_crash)
       report.Comfort.Difftest.cr_deviations)

let difftest_all_parse_fail_ignored () =
  let tbs = Engines.Engine.latest_testbeds () in
  let report =
    Comfort.Difftest.run_case tbs (Comfort.Testcase.make "var = broken ;;;(")
  in
  Alcotest.(check bool) "flagged as consistent parse error" true
    report.Comfort.Difftest.cr_all_parse_failed;
  Alcotest.(check int) "no deviations" 0 (List.length report.Comfort.Difftest.cr_deviations)

let difftest_timeout_2t () =
  let tbs = Engines.Engine.latest_testbeds () in
  (* the Hermes 0.1.1 quadratic-fill quirk is fixed in the latest version,
     so build a dedicated testbed list including the old version *)
  let old_hermes =
    Option.get (Engines.Registry.find_config ~engine:Engines.Registry.Hermes ~version:"0.1.1")
  in
  let tbs = { Engines.Engine.tb_config = old_hermes; tb_mode = Engines.Engine.Normal } :: tbs in
  let src =
    {|var size = 50000; var a = new Array(size); while (size--) { a[size] = 0; } print("done");|}
  in
  let report = Comfort.Difftest.run_case ~fuel:2_000_000 tbs (Comfort.Testcase.make src) in
  Alcotest.(check bool) "old Hermes flagged as timeout" true
    (List.exists
       (fun d ->
         d.Comfort.Difftest.d_kind = Comfort.Difftest.Dev_timeout
         && d.Comfort.Difftest.d_testbed.Engines.Engine.tb_config == old_hermes)
       report.Comfort.Difftest.cr_deviations)

(* --- reducer --- *)

let reducer_shrinks () =
  let noisy =
    {|var pad1 = "unrelated";
var pad2 = [1, 2, 3].map(function(x) { return x + 1; });
function foo(str, len) { return str.substr(0, len); }
print(foo("Name: Albert", undefined));
var pad3 = Math.max(1, 2);|}
  in
  let cfg = Option.get (Engines.Registry.find_config ~engine:Engines.Registry.Rhino ~version:"1.7.12") in
  let tb = { Engines.Engine.tb_config = cfg; tb_mode = Engines.Engine.Normal } in
  let target = Engines.Engine.run tb noisy in
  let reference = Engines.Engine.run_reference noisy in
  let dev =
    {
      Comfort.Difftest.d_testbed = tb;
      d_kind = Comfort.Difftest.Dev_output;
      d_expected = Comfort.Difftest.signature_to_string (Comfort.Difftest.signature_of_result reference);
      d_actual = Comfort.Difftest.signature_to_string (Comfort.Difftest.signature_of_result target);
      d_behavior = "WrongOutput";
      d_fired = target.Jsinterp.Run.r_fired;
    }
  in
  let reduced =
    Comfort.Reducer.reduce
      ~still_triggers:(Comfort.Reducer.still_triggers_deviation tb dev)
      noisy
  in
  Alcotest.(check bool) "smaller" true (String.length reduced < String.length noisy);
  Alcotest.(check bool) "padding gone" false (Str_contains.contains reduced "pad1");
  Alcotest.(check bool) "core kept" true (Str_contains.contains reduced "substr");
  (* the reduced case still deviates *)
  let t2 = Engines.Engine.run tb reduced in
  let r2 = Engines.Engine.run_reference reduced in
  Alcotest.(check bool) "still triggers" true
    (Comfort.Difftest.signature_of_result t2 <> Comfort.Difftest.signature_of_result r2)

let reducer_keeps_when_minimal () =
  let minimal = {|print("abcdef".substr(2, undefined));|} in
  let cfg = Option.get (Engines.Registry.find_config ~engine:Engines.Registry.Rhino ~version:"1.7.12") in
  let tb = { Engines.Engine.tb_config = cfg; tb_mode = Engines.Engine.Normal } in
  let target = Engines.Engine.run tb minimal in
  let dev =
    {
      Comfort.Difftest.d_testbed = tb;
      d_kind = Comfort.Difftest.Dev_output;
      d_expected = "x";
      d_actual = "y";
      d_behavior = "WrongOutput";
      d_fired = target.Jsinterp.Run.r_fired;
    }
  in
  let reduced =
    Comfort.Reducer.reduce
      ~still_triggers:(Comfort.Reducer.still_triggers_deviation tb dev)
      minimal
  in
  Alcotest.(check string) "unchanged" minimal (String.trim reduced)

(* --- bug filter (Fig. 6) --- *)

let bugfilter_dedup () =
  let t = Comfort.Bugfilter.create () in
  let c1 = Comfort.Bugfilter.classify t ~engine:"Rhino" ~api:(Some "substr") ~behavior:"WrongOutput" in
  let c2 = Comfort.Bugfilter.classify t ~engine:"Rhino" ~api:(Some "substr") ~behavior:"WrongOutput" in
  let c3 = Comfort.Bugfilter.classify t ~engine:"Rhino" ~api:(Some "substr") ~behavior:"TypeError" in
  let c4 = Comfort.Bugfilter.classify t ~engine:"V8" ~api:(Some "substr") ~behavior:"WrongOutput" in
  let c5 = Comfort.Bugfilter.classify t ~engine:"Rhino" ~api:None ~behavior:"WrongOutput" in
  Alcotest.(check bool) "first is new" true (c1 = `New_bug);
  Alcotest.(check bool) "repeat filtered" true (c2 = `Seen_before);
  Alcotest.(check bool) "new behaviour is new" true (c3 = `New_bug);
  Alcotest.(check bool) "new engine is new" true (c4 = `New_bug);
  Alcotest.(check bool) "None api node" true (c5 = `New_bug);
  Alcotest.(check int) "four leaves" 4 (Comfort.Bugfilter.leaf_count t);
  Alcotest.(check int) "one filtered" 1 (Comfort.Bugfilter.filtered_count t)

(* --- coverage --- *)

let coverage_measurement () =
  let src = {|function used() { return 1; }
function unused() { return 2; }
if (true) { print(used()); } else { print("never"); }|} in
  let r = Jsinterp.Run.run ~coverage:true src in
  match r.Jsinterp.Run.r_coverage with
  | None -> Alcotest.fail "coverage missing"
  | Some c ->
      Alcotest.(check int) "one of two functions ran" 1 c.Jsinterp.Coverage.func_covered;
      Alcotest.(check int) "two functions total" 2 c.Jsinterp.Coverage.func_total;
      Alcotest.(check bool) "statement coverage partial" true
        (c.Jsinterp.Coverage.stmt_covered < c.Jsinterp.Coverage.stmt_total);
      Alcotest.(check int) "one of two branch arms" 1 c.Jsinterp.Coverage.branch_covered;
      Alcotest.(check bool) "ratios within [0,1]" true
        (let s = Jsinterp.Coverage.stmt_ratio c in
         s >= 0.0 && s <= 1.0)

let coverage_excludes_eval () =
  let src = {|eval("var a = 1; var b = 2; var c = 3; print(a + b + c);");
print("after");|} in
  let r = Jsinterp.Run.run ~coverage:true src in
  match r.Jsinterp.Run.r_coverage with
  | None -> Alcotest.fail "coverage missing"
  | Some c ->
      Alcotest.(check bool) "eval code not counted" true
        (c.Jsinterp.Coverage.stmt_covered <= c.Jsinterp.Coverage.stmt_total)

(* --- generator screening --- *)

let generator_screening () =
  let g = Comfort.Generator.create ~seed:55 ~keep_invalid:0.0 () in
  let cases = Comfort.Generator.generate g ~n:40 in
  Alcotest.(check int) "asked amount" 40 (List.length cases);
  List.iter
    (fun (tc : Comfort.Testcase.t) ->
      Alcotest.(check bool) "all syntactically valid at keep=0" true
        tc.Comfort.Testcase.tc_syntax_valid)
    cases

let suite =
  [
    case "call-site extraction" call_site_extraction;
    case "free identifiers" free_ident_analysis;
    case "static counts" static_counts;
    case "transform" transform_replace;
    case "datagen: driver synthesis" datagen_driver_synthesis;
    case "datagen: free-var binding" datagen_free_var_binding;
    case "datagen: observation harness" datagen_observation_harness;
    case "datagen: invalid input" datagen_invalid_input;
    case "datagen: provenance split" datagen_provenance;
    case "difftest: clean case" difftest_clean_case;
    case "difftest: catches the Fig. 2 bug" difftest_flags_rhino;
    case "difftest: crash flagged" difftest_crash_always_flagged;
    case "difftest: consistent parse errors ignored" difftest_all_parse_fail_ignored;
    case "difftest: 2t timeout rule" difftest_timeout_2t;
    case "reducer shrinks" reducer_shrinks;
    case "reducer: minimal unchanged" reducer_keeps_when_minimal;
    case "bug filter tree" bugfilter_dedup;
    case "coverage measurement" coverage_measurement;
    case "coverage excludes eval code" coverage_excludes_eval;
    case "generator screening" generator_screening;
  ]
