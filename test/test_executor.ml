(* The parallel campaign executor and the per-case front-end cache.

   Three properties matter and each gets direct coverage here:

   - ordering: [run_ordered] consumes results in submission order and
     [map] preserves list order, so a campaign's stateful driver stages
     see exactly the sequential event stream;
   - determinism: a campaign at [~jobs:4] produces byte-identical
     discoveries, timeline and filter counts to [~jobs:1];
   - the front-end cache: one parse per distinct (parse options, mode)
     group per case, and cached runs equal uncached runs field by field. *)

open Helpers
module Executor = Comfort.Executor
module Engine = Engines.Engine
module Run = Jsinterp.Run

(* --- Executor.map --- *)

let map_matches_list_map () =
  let xs = List.init 50 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "jobs=1" (List.map f xs) (Executor.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "jobs=4" (List.map f xs) (Executor.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "more jobs than items" (List.map f [ 1; 2 ])
    (Executor.map ~jobs:8 f [ 1; 2 ]);
  Alcotest.(check (list int)) "empty" [] (Executor.map ~jobs:4 f [])

let map_propagates_exceptions () =
  Alcotest.check_raises "worker exception re-raised" Exit (fun () ->
      ignore
        (Executor.map ~jobs:3
           (fun x -> if x = 7 then raise Exit else x)
           (List.init 10 (fun i -> i))))

(* --- Executor.run_ordered --- *)

let run_ordered_in_submission_order () =
  Executor.with_pool ~jobs:4 (fun pool ->
      let seen = ref [] in
      let xs = List.init 40 (fun i -> i) in
      Executor.run_ordered pool
        (fun x -> x * 2)
        xs
        ~consume:(fun i x y ->
          Alcotest.(check int) "result is f x" (x * 2) y;
          seen := i :: !seen);
      Alcotest.(check (list int)) "indices in submission order"
        (List.init 40 (fun i -> i))
        (List.rev !seen))

let run_ordered_small_window () =
  Executor.with_pool ~jobs:3 (fun pool ->
      let seen = ref [] in
      Executor.run_ordered pool ~window:3
        (fun x -> x + 100)
        (List.init 20 (fun i -> i))
        ~consume:(fun i _ y ->
          Alcotest.(check int) "value" (i + 100) y;
          seen := i :: !seen);
      Alcotest.(check int) "all consumed" 20 (List.length !seen))

let run_ordered_exception_at_consumption_point () =
  Executor.with_pool ~jobs:4 (fun pool ->
      let consumed = ref 0 in
      (try
         Executor.run_ordered pool
           (fun x -> if x = 5 then raise Exit else x)
           (List.init 10 (fun i -> i))
           ~consume:(fun _ _ _ -> incr consumed);
         Alcotest.fail "expected Exit"
       with Exit -> ());
      Alcotest.(check int) "items before the failing one were consumed" 5
        !consumed)

let sequential_pool_spawns_no_domains () =
  (* jobs=1 must be the plain loop: same domain, strict order *)
  Executor.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs clamped" 1 (Executor.jobs pool);
      let self = Domain.self () in
      Executor.run_ordered pool
        (fun x ->
          Alcotest.(check bool) "f runs on the calling domain" true
            (Domain.self () = self);
          x)
        [ 1; 2; 3 ]
        ~consume:(fun _ x y -> Alcotest.(check int) "identity" x y))

(* --- campaign determinism across job counts --- *)

(* Everything observable about a discovery except the global test-case id,
   which is an allocation counter and not meaningful across campaigns. *)
let disc_key (d : Comfort.Campaign.discovery) =
  ( Engines.Registry.engine_name d.Comfort.Campaign.disc_engine,
    Jsinterp.Quirk.to_string d.Comfort.Campaign.disc_quirk,
    d.Comfort.Campaign.disc_at,
    d.Comfort.Campaign.disc_behavior,
    d.Comfort.Campaign.disc_version,
    Engine.mode_to_string d.Comfort.Campaign.disc_mode,
    d.Comfort.Campaign.disc_case.Comfort.Testcase.tc_source )

let campaign_is_jobs_invariant () =
  let campaign jobs =
    Comfort.Campaign.run ~budget:120 ~jobs
      (Comfort.Campaign.comfort_fuzzer ~seed:17 ())
  in
  let seq = campaign 1 in
  let par = campaign 4 in
  Alcotest.(check int) "cases run" seq.Comfort.Campaign.cp_cases_run
    par.Comfort.Campaign.cp_cases_run;
  Alcotest.(check bool) "same discoveries in the same order" true
    (List.map disc_key seq.Comfort.Campaign.cp_discoveries
    = List.map disc_key par.Comfort.Campaign.cp_discoveries);
  Alcotest.(check bool) "same timeline" true
    (seq.Comfort.Campaign.cp_timeline = par.Comfort.Campaign.cp_timeline);
  Alcotest.(check int) "same filtered repeats"
    seq.Comfort.Campaign.cp_filtered_repeats
    par.Comfort.Campaign.cp_filtered_repeats;
  Alcotest.(check int) "same unattributed" seq.Comfort.Campaign.cp_unattributed
    par.Comfort.Campaign.cp_unattributed

(* --- front-end cache --- *)

let parse_cache_one_parse_per_group () =
  let src = "print(1 + 1);" in
  let testbeds = Engine.all_testbeds in
  let profiles =
    List.sort_uniq compare
      (List.map
         (fun (tb : Engine.testbed) ->
           tb.Engine.tb_config.Engines.Registry.cfg_es = Engines.Registry.ES5)
         testbeds)
  in
  let tc = Comfort.Testcase.make src in
  let before = Jsparse.Parser.parse_count () in
  let report = Comfort.Difftest.run_case testbeds tc in
  let parses = Jsparse.Parser.parse_count () - before in
  Alcotest.(check int) "every testbed ran" (List.length testbeds)
    report.Comfort.Difftest.cr_tested;
  (* a source with no quirky or strict-sensitive syntax needs exactly one
     permissive base parse per profile: every (parse options, mode) group
     shares it, and edition gating reads the same parses for free *)
  Alcotest.(check int) "one parse per base profile" (List.length profiles)
    parses;
  Alcotest.(check bool) "well below one parse per testbed" true
    (parses * 3 < List.length testbeds)

let cached_run_equals_direct_run () =
  (* sources chosen to exercise every cache dimension: plain code, a
     parse-quirk trigger (for-without-body), and a strict-only early
     error (duplicate params) that splits the strict/sloppy groups *)
  let sources =
    [
      "print(1 + 1);";
      "for (var i = 0; i < 3; i++)";
      "function f(a, a) { return a; } print(f(1, 2));";
      "var o = {}; print(delete o);";
    ]
  in
  List.iter
    (fun src ->
      let fc = Engine.Frontend.cache src in
      List.iter
        (fun (tb : Engine.testbed) ->
          let direct = Engine.run ~fuel:100_000 tb src in
          let cached =
            Engine.run ~fuel:100_000
              ~frontend:(Engine.Frontend.frontend fc tb)
              tb src
          in
          let id = Engine.testbed_id tb in
          Alcotest.(check bool) (id ^ " parsed") direct.Run.r_parsed
            cached.Run.r_parsed;
          Alcotest.(check (option string)) (id ^ " parse error")
            direct.Run.r_parse_error cached.Run.r_parse_error;
          Alcotest.(check string) (id ^ " status")
            (Run.status_to_string direct.Run.r_status)
            (Run.status_to_string cached.Run.r_status);
          Alcotest.(check string) (id ^ " output") direct.Run.r_output
            cached.Run.r_output;
          Alcotest.(check (list string)) (id ^ " fired quirks")
            (List.map Jsinterp.Quirk.to_string
               (Jsinterp.Quirk.Set.elements direct.Run.r_fired))
            (List.map Jsinterp.Quirk.to_string
               (Jsinterp.Quirk.Set.elements cached.Run.r_fired)))
        Engine.all_testbeds)
    sources

let supports_verdict_cached () =
  (* an ES2017-only construct: ES5 front ends reject, standard accepts *)
  let src = "var f = async function() {};" in
  let fc = Engine.Frontend.cache src in
  List.iter
    (fun (tb : Engine.testbed) ->
      Alcotest.(check bool)
        (Engine.testbed_id tb ^ " supports matches uncached")
        (Engine.supports tb.Engine.tb_config src)
        (Engine.Frontend.supports fc tb.Engine.tb_config))
    Engine.all_testbeds

(* --- the 2t rule's self-exclusion fix --- *)

let result ~fuel : Run.result =
  {
    Run.r_parsed = true;
    r_parse_error = None;
    r_status = Run.Sts_normal;
    r_output = "x\n";
    r_fuel_used = fuel;
    r_fired = Jsinterp.Quirk.Set.empty;
    r_touched = Jsinterp.Quirk.Set.empty;
    r_coverage = None;
  }

let two_equally_slow_engines_not_flagged () =
  (* two engines burn the same high fuel, one is fast. Excluding "other
     engines" by fuel value made each slow run drop the other slow run
     too, so both were falsely flagged; excluding by position keeps each
     one's twin in the comparison pool *)
  match Engine.all_testbeds with
  | a :: b :: c :: _ ->
      let runs =
        Comfort.Difftest.apply_2t_rule
          [
            (a, result ~fuel:100_000);
            (b, result ~fuel:100_000);
            (c, result ~fuel:1_000);
          ]
      in
      List.iter
        (fun (_, _, s) ->
          Alcotest.(check bool) "no run flagged as timeout" false
            (s = Comfort.Difftest.Sig_timeout))
        runs
  | _ -> Alcotest.fail "need three testbeds"

let lone_slow_engine_still_flagged () =
  match Engine.all_testbeds with
  | a :: b :: c :: _ ->
      let runs =
        Comfort.Difftest.apply_2t_rule
          [
            (a, result ~fuel:100_000);
            (b, result ~fuel:1_000);
            (c, result ~fuel:2_000);
          ]
      in
      let sigs = List.map (fun (_, _, s) -> s) runs in
      Alcotest.(check bool) "slow run flagged" true
        (List.nth sigs 0 = Comfort.Difftest.Sig_timeout);
      Alcotest.(check bool) "fast runs untouched" true
        (List.nth sigs 1 <> Comfort.Difftest.Sig_timeout
        && List.nth sigs 2 <> Comfort.Difftest.Sig_timeout)
  | _ -> Alcotest.fail "need three testbeds"

let suite =
  [
    case "map = List.map at any job count" map_matches_list_map;
    case "map re-raises worker exceptions" map_propagates_exceptions;
    case "run_ordered consumes in submission order"
      run_ordered_in_submission_order;
    case "run_ordered with a tight window" run_ordered_small_window;
    case "run_ordered re-raises at the failing item"
      run_ordered_exception_at_consumption_point;
    case "jobs=1 never leaves the calling domain"
      sequential_pool_spawns_no_domains;
    case "campaign results are jobs-invariant" campaign_is_jobs_invariant;
    case "one parse per front-end group" parse_cache_one_parse_per_group;
    case "cached runs equal direct runs" cached_run_equals_direct_run;
    case "supports verdict survives caching" supports_verdict_cached;
    case "2t rule: equally slow engines not flagged"
      two_equally_slow_engines_not_flagged;
    case "2t rule: lone slow engine flagged" lone_slow_engine_still_flagged;
  ]
