(* The coordinator/worker framing codec (Ipc, DESIGN.md §14).

   The peer of this codec is a worker process that can be SIGKILLed
   between any two bytes, so the properties that matter are:

   - arbitrary closure-free values round-trip through a frame;
   - every malformed input — clean EOF, EOF mid-header, EOF mid-payload,
     garbage magic, a corrupted checksum, an undecodable payload —
     comes back as the matching typed [Ipc.error], never as a raised
     exception;
   - an adversarial length prefix bounces off [max_frame] before any
     allocation, so a corrupt frame cannot OOM the driver. *)

module Ipc = Comfort.Ipc

(* A frame written into a temp file, handed back as a readable fd.
   Pipes cap at the kernel buffer (64 KiB) without a concurrent reader;
   files don't, so large-frame and surgically-corrupted-frame tests go
   through here. *)
let with_frame_file (fill : Unix.file_descr -> unit)
    (check : Unix.file_descr -> unit) : unit =
  let path = Filename.temp_file "comfort-ipc" ".frame" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          fill fd;
          ignore (Unix.lseek fd 0 Unix.SEEK_SET);
          check fd))

let write_raw fd s =
  let b = Bytes.of_string s in
  let n = Unix.write fd b 0 (Bytes.length b) in
  Alcotest.(check int) "raw bytes written" (Bytes.length b) n

(* read the whole frame Ipc.write produced, as raw bytes, for surgery *)
let frame_bytes v =
  let buf = Buffer.create 256 in
  with_frame_file
    (fun fd -> Ipc.write fd v)
    (fun fd ->
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ());
  Buffer.contents buf

type payload = {
  p_tag : int;
  p_text : string;
  p_pairs : (int * string) list;
  p_opt : float option;
}

let gen_payload =
  QCheck2.Gen.(
    map
      (fun (tag, text, pairs, opt) ->
        { p_tag = tag; p_text = text; p_pairs = pairs; p_opt = opt })
      (quad int (string_size (0 -- 2000)) (small_list (pair int string))
         (option float)))

let roundtrip_prop =
  QCheck2.Test.make ~count:120 ~name:"ipc: arbitrary payloads round-trip"
    gen_payload (fun v ->
      let got = ref None in
      with_frame_file
        (fun fd -> Ipc.write fd v)
        (fun fd -> got := Some (Ipc.read fd));
      match !got with
      (* [compare], not [=]: the float option can draw a NaN *)
      | Some (Ok (v' : payload)) -> compare v' v = 0
      | _ -> false)

let roundtrip_over_pipe () =
  (* the production transport: both directions of a worker conversation
     through actual pipes, several frames back to back *)
  let r, w = Unix.pipe ~cloexec:false () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let vs = [ `Task (1, "alpha"); `Task (2, "beta"); `Done [ 3; 4; 5 ] ] in
      List.iter (fun v -> Ipc.write w v) vs;
      List.iter
        (fun v ->
          match Ipc.read r with
          | Ok v' ->
              Alcotest.(check bool) "frame order and content" true (v' = v)
          | Error e -> Alcotest.failf "read failed: %s" (Ipc.error_to_string e))
        vs;
      Unix.close w;
      match Ipc.read r with
      | Error Ipc.Closed -> ()
      | Ok _ -> Alcotest.fail "read past EOF"
      | Error e ->
          Alcotest.failf "EOF between frames must be Closed, got %s"
            (Ipc.error_to_string e))

let large_frame_roundtrip () =
  (* a frame well past the pipe buffer, under max_frame: must survive *)
  let v = String.init 300_000 (fun i -> Char.chr (i mod 251)) in
  with_frame_file
    (fun fd -> Ipc.write fd v)
    (fun fd ->
      match Ipc.read fd with
      | Ok (v' : string) ->
          Alcotest.(check bool) "300kB payload intact" true (String.equal v v')
      | Error e -> Alcotest.failf "read failed: %s" (Ipc.error_to_string e))

let eof_mid_header_is_truncated () =
  let frame = frame_bytes (42, "mid-header") in
  with_frame_file
    (fun fd -> write_raw fd (String.sub frame 0 7))
    (fun fd ->
      match Ipc.read fd with
      | Error (Ipc.Truncated _) -> ()
      | Ok _ -> Alcotest.fail "truncated header decoded"
      | Error e ->
          Alcotest.failf "want Truncated, got %s" (Ipc.error_to_string e))

let eof_mid_payload_is_truncated () =
  let frame = frame_bytes (String.make 500 'x') in
  with_frame_file
    (fun fd -> write_raw fd (String.sub frame 0 (String.length frame - 100)))
    (fun fd ->
      match Ipc.read fd with
      | Error (Ipc.Truncated _) -> ()
      | Ok _ -> Alcotest.fail "truncated payload decoded"
      | Error e ->
          Alcotest.failf "want Truncated, got %s" (Ipc.error_to_string e))

let garbage_magic_is_corrupt () =
  with_frame_file
    (fun fd -> write_raw fd "XXXX garbage that is long enough for a header")
    (fun fd ->
      match Ipc.read fd with
      | Error (Ipc.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "garbage decoded"
      | Error e ->
          Alcotest.failf "want Corrupt, got %s" (Ipc.error_to_string e))

let oversized_prefix_rejected_without_allocation () =
  (* a header claiming a huge payload: must come back Oversized with the
     claimed size, and must not OOM — we prove "no allocation" by
     observing that the major heap does not grow while rejecting a
     prefix that claims more memory than the test machine has *)
  let claim = 0xFFFF_FF00 (* ~4 GiB as an unsigned u32 *) in
  let hdr = Bytes.create 16 in
  Bytes.blit_string "CFR1" 0 hdr 0 4;
  Bytes.set_int32_be hdr 4 (Int32.of_int claim);
  Bytes.set_int64_be hdr 8 0L;
  with_frame_file
    (fun fd -> write_raw fd (Bytes.to_string hdr))
    (fun fd ->
      let before = Gc.quick_stat () in
      (match Ipc.read fd with
      | Error (Ipc.Oversized n) ->
          Alcotest.(check int) "claimed length reported" claim n
      | Ok _ -> Alcotest.fail "oversized frame decoded"
      | Error e ->
          Alcotest.failf "want Oversized, got %s" (Ipc.error_to_string e));
      let after = Gc.quick_stat () in
      Alcotest.(check bool) "no heap growth for the claimed payload" true
        (after.Gc.heap_words - before.Gc.heap_words < claim / 8));
  (* negative-when-signed prefixes are the same attack; they must hit the
     bound, not wrap to a small positive length *)
  let hdr2 = Bytes.create 16 in
  Bytes.blit_string "CFR1" 0 hdr2 0 4;
  Bytes.set_int32_be hdr2 4 (-1l);
  Bytes.set_int64_be hdr2 8 0L;
  with_frame_file
    (fun fd -> write_raw fd (Bytes.to_string hdr2))
    (fun fd ->
      match Ipc.read fd with
      | Error (Ipc.Oversized n) ->
          Alcotest.(check bool) "u32 read unsigned" true (n = 0xFFFF_FFFF)
      | Ok _ -> Alcotest.fail "negative-length frame decoded"
      | Error e ->
          Alcotest.failf "want Oversized, got %s" (Ipc.error_to_string e))

let checksum_mismatch_is_corrupt () =
  let frame = Bytes.of_string (frame_bytes [ "checksummed"; "payload" ]) in
  (* flip one payload byte; the header (incl. stored checksum) is intact *)
  let i = Bytes.length frame - 3 in
  Bytes.set frame i (Char.chr (Char.code (Bytes.get frame i) lxor 0x20));
  with_frame_file
    (fun fd -> write_raw fd (Bytes.to_string frame))
    (fun fd ->
      match Ipc.read fd with
      | Error (Ipc.Corrupt what) ->
          Alcotest.(check bool) "checksum named" true
            (what = "checksum mismatch")
      | Ok _ -> Alcotest.fail "corrupted payload decoded"
      | Error e ->
          Alcotest.failf "want Corrupt, got %s" (Ipc.error_to_string e))

let undecodable_payload_is_corrupt () =
  (* a well-formed frame (magic, length, checksum all valid) whose
     payload is not a Marshal stream: the Marshal failure must be caught
     and typed, not escape as an exception *)
  let payload = String.make 64 'z' in
  let hdr = Bytes.create 16 in
  Bytes.blit_string "CFR1" 0 hdr 0 4;
  Bytes.set_int32_be hdr 4 (Int32.of_int (String.length payload));
  (* reuse the codec's own checksum by splicing a real frame's algorithm:
     FNV-1a64, reimplemented locally to keep the test honest *)
  let fnv s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
               0x100000001b3L)
      s;
    !h
  in
  Bytes.set_int64_be hdr 8 (fnv payload);
  with_frame_file
    (fun fd -> write_raw fd (Bytes.to_string hdr ^ payload))
    (fun fd ->
      match Ipc.read fd with
      | Error (Ipc.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "non-Marshal payload decoded"
      | Error e ->
          Alcotest.failf "want Corrupt, got %s" (Ipc.error_to_string e))

let error_strings_are_distinct () =
  let msgs =
    List.map Ipc.error_to_string
      [
        Ipc.Closed;
        Ipc.Truncated "header: 3/16 bytes";
        Ipc.Oversized 123_456_789;
        Ipc.Corrupt "bad magic";
      ]
  in
  Alcotest.(check int) "four distinct diagnostics" 4
    (List.length (List.sort_uniq compare msgs))

let suite =
  [
    Helpers.case "pipe: frames round-trip in order, EOF is Closed"
      roundtrip_over_pipe;
    Helpers.case "large frame survives" large_frame_roundtrip;
    Helpers.case "EOF mid-header -> Truncated" eof_mid_header_is_truncated;
    Helpers.case "EOF mid-payload -> Truncated" eof_mid_payload_is_truncated;
    Helpers.case "garbage magic -> Corrupt" garbage_magic_is_corrupt;
    Helpers.case "adversarial length -> Oversized, no allocation"
      oversized_prefix_rejected_without_allocation;
    Helpers.case "checksum mismatch -> Corrupt" checksum_mismatch_is_corrupt;
    Helpers.case "undecodable payload -> Corrupt"
      undecodable_payload_is_corrupt;
    Helpers.case "error diagnostics are distinct" error_strings_are_distinct;
  ]
  @ [ QCheck_alcotest.to_alcotest roundtrip_prop ]
