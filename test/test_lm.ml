(* The language-model substrate: BPE tokenizer, n-gram model, generation. *)

open Helpers

let bpe_roundtrip () =
  let t = Lm.Bpe.learn ~n_merges:100 Lm.Js_corpus.full_text in
  List.iter
    (fun text ->
      let ids = Lm.Bpe.encode t text in
      Alcotest.(check string) ("roundtrip " ^ String.escaped text) text
        (Lm.Bpe.decode t ids))
    [
      "var x = 1;";
      "function foo(a, b) { return a + b; }";
      "print(\"hello\");";
      "for (var i = 0; i < 10; i++) {}";
      "x === y && a !== b";
    ]

let bpe_merges_keywords () =
  let t = Lm.Bpe.learn ~n_merges:200 Lm.Js_corpus.full_text in
  (* common keywords should encode to few tokens, rare identifiers to more *)
  let len s = List.length (Lm.Bpe.encode t s) in
  Alcotest.(check bool) "function is compact" true (len "function" <= 3);
  Alcotest.(check bool) "return is compact" true (len "return" <= 3);
  Alcotest.(check bool) "rare identifier splits more" true
    (len "zqxjkvwpy" > len "return")

let pretokenizer () =
  let toks = Lm.Bpe.pre_tokenize "var x = 1;\nprint(x);" in
  Alcotest.(check bool) "keeps words" true (List.mem "var" toks);
  Alcotest.(check bool) "keeps operators" true (List.mem "=" toks);
  Alcotest.(check bool) "collapses newlines" true (List.mem "\n" toks);
  Alcotest.(check string) "reassembles" "var x = 1;\nprint(x);"
    (String.concat "" toks)

let ngram_determinism () =
  let gen seed =
    let m = Lazy.force Lm.Model.comfort in
    let rng = Cutil.Rng.create seed in
    Lm.Model.generate m rng ~prefix:"var a = function(x) {" ~k:10 ~max_tokens:300
      ~stop:(Comfort.Generator.brace_stop ())
  in
  Alcotest.(check string) "same seed, same program" (gen 5) (gen 5);
  (* different seeds should usually differ (not a hard guarantee; check a
     few seeds until one differs) *)
  let base = gen 5 in
  Alcotest.(check bool) "different seeds diverge" true
    (List.exists (fun s -> gen s <> base) [ 6; 7; 8; 9 ])

let ngram_candidates () =
  let m = Lazy.force Lm.Model.comfort in
  let ids = Lm.Model.encode m "var " in
  let history = Lm.Ngram.initial_history m.Lm.Model.model ids in
  match Lm.Ngram.candidates m.Lm.Model.model history ~k:10 with
  | [] -> Alcotest.fail "no candidates after 'var '"
  | cands ->
      Alcotest.(check bool) "at most k candidates" true (List.length cands <= 10);
      (* counts are sorted descending *)
      let counts = List.map snd cands in
      Alcotest.(check (list int)) "sorted by count" (List.sort (fun a b -> compare b a) counts) counts

let generation_quality () =
  let g = Comfort.Generator.create ~seed:123 () in
  let rate = Comfort.Generator.validity_rate g ~n:150 in
  Alcotest.(check bool)
    (Printf.sprintf "comfort validity %.0f%% >= 50%%" (100.0 *. rate))
    true (rate >= 0.5);
  let dm = Lazy.force Lm.Model.deepsmith in
  let gd = Comfort.Generator.create ~seed:123 ~model:dm () in
  let rate_d = Comfort.Generator.validity_rate gd ~n:150 in
  Alcotest.(check bool)
    (Printf.sprintf "deepsmith validity %.0f%% below comfort" (100.0 *. rate_d))
    true
    (rate_d < rate)

let corpus_is_parseable () =
  List.iteri
    (fun i src ->
      match Jsparse.Parser.parse_program src with
      | _ -> ()
      | exception Jsparse.Parser.Syntax_error (msg, line) ->
          Alcotest.failf "training program %d invalid (line %d: %s)" i line msg)
    Lm.Js_corpus.programs;
  Alcotest.(check bool) "corpus is sizeable" true
    (List.length Lm.Js_corpus.programs >= 100)

let corpus_runs_clean () =
  (* every training program executes on the reference engine and prints
     something, with no uncaught error *)
  List.iteri
    (fun i src ->
      let r = Jsinterp.Run.run ~fuel:500_000 src in
      (match r.Jsinterp.Run.r_status with
      | Jsinterp.Run.Sts_normal -> ()
      | s ->
          Alcotest.failf "training program %d ended with %s:\n%s" i
            (Jsinterp.Run.status_to_string s) src);
      if r.Jsinterp.Run.r_output = "" then
        Alcotest.failf "training program %d prints nothing" i)
    Lm.Js_corpus.programs

let corpus_avoids_baseline_apis () =
  (* §5.3.2: Comfort's training corpus must not contain the API patterns the
     baseline fuzzers are credited with *)
  List.iter
    (fun pattern ->
      List.iteri
        (fun i src ->
          if Str_contains.contains src pattern then
            Alcotest.failf "corpus program %d contains forbidden pattern %s" i pattern)
        Lm.Js_corpus.programs)
    [ "big.call"; "Object.seal(new String"; "\"lastIndex\"" ]

let generation_terminates () =
  let g = Comfort.Generator.create ~seed:77 () in
  for _ = 1 to 30 do
    let src = Comfort.Generator.sample_program g in
    Alcotest.(check bool) "bounded size" true (String.length src < 60_000)
  done

let suite =
  [
    case "bpe round-trip" bpe_roundtrip;
    case "bpe merges common words" bpe_merges_keywords;
    case "pre-tokenizer" pretokenizer;
    case "deterministic sampling" ngram_determinism;
    case "top-k candidates" ngram_candidates;
    case "validity: comfort > deepsmith" generation_quality;
    case "training corpus parses" corpus_is_parseable;
    case "training corpus runs clean" corpus_runs_clean;
    case "corpus avoids baseline-only APIs" corpus_avoids_baseline_apis;
    case "generation terminates" generation_terminates;
  ]
