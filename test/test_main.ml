(* Entry point aggregating every test suite. *)

let () =
  Alcotest.run "comfort"
    [
      (* The coordinator suite forks worker processes, and OCaml 5
         forbids fork in any process that has ever spawned a domain —
         so it must run before every suite that uses jobs > 1
         (executor, supervisor, sharing, ...), or its tests would all
         degrade to skips. *)
      ("coordinator", Test_coordinator.suite);
      ("ipc", Test_ipc.suite);
      ("interp", Test_interp.suite);
      ("parser", Test_parser.suite);
      ("string builtins", Test_string_builtins.suite);
      ("array builtins", Test_array_builtins.suite);
      ("object+misc builtins", Test_object_builtins.suite);
      ("quirks", Test_quirks.suite);
      ("regex", Test_regex.suite);
      ("specdb", Test_specdb.suite);
      ("engines", Test_engines.suite);
      ("lm", Test_lm.suite);
      ("analysis", Test_analysis.suite);
      ("core", Test_core.suite);
      ("executor", Test_executor.suite);
      ("sharing", Test_sharing.suite);
      ("reach", Test_reach.suite);
      ("resolve", Test_resolve.suite);
      ("specialize", Test_specialize.suite);
      ("pipeline", Test_pipeline.suite);
      ("util", Test_util.suite);
      ("test262 export", Test_export.suite);
      ("paper listings", Test_listings.suite);
      ("properties", Test_properties.suite);
      ("feedback", Test_feedback.suite);
      ("supervisor", Test_supervisor.suite);
      ("profiler", Test_profiler.suite);
      ("coercions", Test_coercion.suite);
      ("ground truth", Test_groundtruth.suite);
    ]
