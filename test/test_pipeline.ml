(* End-to-end fuzzing campaigns and the baseline fuzzers. These use small
   budgets; the full-scale runs live in bench/main.ml. *)

open Helpers

let comfort_campaign_finds_bugs () =
  let fz = Comfort.Campaign.comfort_fuzzer ~seed:11 () in
  let res = Comfort.Campaign.run ~budget:600 fz in
  Alcotest.(check int) "budget honoured" 600 res.Comfort.Campaign.cp_cases_run;
  Alcotest.(check bool) "finds at least 3 unique bugs" true
    (List.length res.Comfort.Campaign.cp_discoveries >= 3);
  Alcotest.(check int) "no unattributed deviations" 0
    res.Comfort.Campaign.cp_unattributed;
  (* discoveries are unique (engine, quirk) pairs *)
  let keys =
    List.map
      (fun d -> (d.Comfort.Campaign.disc_engine, d.Comfort.Campaign.disc_quirk))
      res.Comfort.Campaign.cp_discoveries
  in
  Alcotest.(check int) "no duplicate discoveries"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  (* every discovered quirk is genuinely present in the engine's registry *)
  List.iter
    (fun (d : Comfort.Campaign.discovery) ->
      Alcotest.(check bool) "discovery matches ground truth" true
        (List.exists
           (fun (e, q) ->
             e = d.Comfort.Campaign.disc_engine
             && Jsinterp.Quirk.equal q d.Comfort.Campaign.disc_quirk)
           Engines.Registry.all_bugs))
    res.Comfort.Campaign.cp_discoveries;
  (* the timeline is monotone and ends at the discovery count *)
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "timeline monotone" true
    (monotone res.Comfort.Campaign.cp_timeline)

let campaign_determinism () =
  let run () =
    let fz = Comfort.Campaign.comfort_fuzzer ~seed:42 () in
    let res = Comfort.Campaign.run ~budget:200 fz in
    List.map
      (fun d ->
        ( Engines.Registry.engine_name d.Comfort.Campaign.disc_engine,
          Jsinterp.Quirk.to_string d.Comfort.Campaign.disc_quirk ))
      res.Comfort.Campaign.cp_discoveries
  in
  Alcotest.(check (list (pair string string))) "same seed, same bugs" (run ()) (run ())

let datagen_ablation () =
  (* DESIGN ablation 3 in miniature: spec guidance finds bugs that the
     unguided generator misses at the same budget *)
  let with_dg =
    Comfort.Campaign.run ~budget:500 (Comfort.Campaign.comfort_fuzzer ~seed:9 ())
  in
  let without_dg =
    Comfort.Campaign.run ~budget:500
      (Comfort.Campaign.comfort_fuzzer ~seed:9 ~with_datagen:false ())
  in
  Alcotest.(check bool) "datagen >= no-datagen" true
    (List.length with_dg.Comfort.Campaign.cp_discoveries
    >= List.length without_dg.Comfort.Campaign.cp_discoveries)

let baseline_interfaces () =
  List.iter
    (fun fz ->
      let cases = fz.Comfort.Campaign.fz_batch 25 in
      Alcotest.(check int)
        (fz.Comfort.Campaign.fz_name ^ " batch size")
        25 (List.length cases);
      (* provenance is tagged with the fuzzer *)
      List.iter
        (fun (tc : Comfort.Testcase.t) ->
          match tc.Comfort.Testcase.tc_provenance with
          | Comfort.Testcase.P_fuzzer n ->
              Alcotest.(check string) "provenance name" fz.Comfort.Campaign.fz_name n
          | _ -> Alcotest.fail "baseline case without fuzzer provenance")
        cases)
    (Baselines.Fuzzers.all ())

let mutation_fuzzers_emit_valid_js () =
  (* AST-level mutators always print syntactically valid programs *)
  List.iter
    (fun fz ->
      let cases = fz.Comfort.Campaign.fz_batch 40 in
      let valid =
        List.length
          (List.filter (fun c -> c.Comfort.Testcase.tc_syntax_valid) cases)
      in
      Alcotest.(check bool)
        (fz.Comfort.Campaign.fz_name ^ " validity high")
        true
        (valid >= 38))
    [ Baselines.Fuzzers.die (); Baselines.Fuzzers.codealchemist (); Baselines.Fuzzers.montage () ]

let codealchemist_def_before_use () =
  let fz = Baselines.Fuzzers.codealchemist ~seed:5 () in
  let cases = fz.Comfort.Campaign.fz_batch 30 in
  List.iter
    (fun (tc : Comfort.Testcase.t) ->
      match Jsparse.Parser.parse_program tc.Comfort.Testcase.tc_source with
      | p ->
          Alcotest.(check (list string)) "no free identifiers" []
            (Analysis.Scope.free_variables p)
      | exception Jsparse.Parser.Syntax_error _ -> ())
    cases

let baselines_find_their_signature_bugs () =
  (* §5.3.2: each baseline's seed corpus reaches its signature bug *)
  let found fz quirk budget =
    let res = Comfort.Campaign.run ~budget fz in
    List.exists
      (fun d -> Jsinterp.Quirk.equal d.Comfort.Campaign.disc_quirk quirk)
      res.Comfort.Campaign.cp_discoveries
  in
  Alcotest.(check bool) "Fuzzilli finds the seal crash" true
    (found (Baselines.Fuzzers.fuzzilli ~seed:2 ()) Jsinterp.Quirk.Q_seal_string_object_crash 250);
  Alcotest.(check bool) "CodeAlchemist finds big.call(null)" true
    (found
       (Baselines.Fuzzers.codealchemist ~seed:3 ())
       Jsinterp.Quirk.Q_string_big_null_no_typeerror 250);
  Alcotest.(check bool) "DIE finds the lastIndex bug" true
    (found (Baselines.Fuzzers.die ~seed:4 ()) Jsinterp.Quirk.Q_regexp_lastindex_nonwritable_silent 250);
  Alcotest.(check bool) "Montage finds the funcexpr binding bug" true
    (found
       (Baselines.Fuzzers.montage ~seed:5 ())
       Jsinterp.Quirk.Q_named_funcexpr_binding_mutable 250)

let comfort_misses_baseline_only_bugs () =
  (* §5.3.2: Comfort's corpus cannot reach String.prototype.big *)
  let res = Comfort.Campaign.run ~budget:800 (Comfort.Campaign.comfort_fuzzer ~seed:13 ()) in
  Alcotest.(check bool) "Comfort does not find big.call(null)" false
    (List.exists
       (fun d ->
         Jsinterp.Quirk.equal d.Comfort.Campaign.disc_quirk
           Jsinterp.Quirk.Q_string_big_null_no_typeerror)
       res.Comfort.Campaign.cp_discoveries)

let metrics_shapes () =
  let q = Comfort.Metrics.measure (Comfort.Campaign.comfort_fuzzer ~seed:21 ()) ~n:80 in
  Alcotest.(check bool) "validity in (0, 1]" true
    (q.Comfort.Metrics.q_validity > 0.0 && q.Comfort.Metrics.q_validity <= 1.0);
  Alcotest.(check bool) "coverages within [0,1]" true
    (List.for_all
       (fun v -> v >= 0.0 && v <= 1.0)
       [
         q.Comfort.Metrics.q_stmt_cov; q.Comfort.Metrics.q_branch_cov;
         q.Comfort.Metrics.q_func_cov;
       ])

let report_tables () =
  let res = Comfort.Campaign.run ~budget:600 (Comfort.Campaign.comfort_fuzzer ~seed:11 ()) in
  let t2 = Comfort.Report.table2 res in
  Alcotest.(check int) "table2 has ten engine rows" 10 (List.length t2);
  let total_found = List.fold_left (fun acc (_, s, _, _, _) -> acc + s) 0 t2 in
  Alcotest.(check int) "table2 total = discoveries" (List.length res.Comfort.Campaign.cp_discoveries) total_found;
  (* verified <= found, fixed <= verified per row *)
  List.iter
    (fun (name, s, v, f, _) ->
      Alcotest.(check bool) (name ^ " verified<=found") true (v <= s);
      Alcotest.(check bool) (name ^ " fixed<=verified") true (f <= v))
    t2;
  let t4 = Comfort.Report.table4 res in
  Alcotest.(check int) "table4 has two categories" 2 (List.length t4);
  let t4_total = List.fold_left (fun acc (_, s, _, _, _) -> acc + s) 0 t4 in
  Alcotest.(check int) "table4 partitions discoveries" total_found t4_total;
  let f7 = Comfort.Report.fig7 res in
  Alcotest.(check int) "fig7 six components" 6 (List.length f7);
  let t3 = Comfort.Report.table3 res in
  let t3_total = List.fold_left (fun acc (_, _, s, _, _, _) -> acc + s) 0 t3 in
  Alcotest.(check int) "table3 partitions discoveries" total_found t3_total

let suite =
  [
    case "comfort campaign end-to-end" comfort_campaign_finds_bugs;
    case "campaign determinism" campaign_determinism;
    case "datagen ablation" datagen_ablation;
    case "baseline fuzzer interfaces" baseline_interfaces;
    case "mutators emit valid JS" mutation_fuzzers_emit_valid_js;
    case "codealchemist def-before-use" codealchemist_def_before_use;
    case "baselines find signature bugs" baselines_find_their_signature_bugs;
    case "comfort misses corpus-gap bugs" comfort_misses_baseline_only_bugs;
    case "quality metrics" metrics_shapes;
    case "report tables" report_tables;
  ]
