(* The whole-pipeline campaign profiler (Run.Stage + Metrics.profile).

   The load-bearing invariant: at jobs = 1 the pipeline stages are
   disjoint (outermost-wins re-entrancy), so their sum is a
   no-double-counting lower bound on the measured campaign wall clock —
   for plain, reducing, checkpointing and supervised/chaos campaigns
   alike. At jobs > 1 the sum is CPU time across domains and only
   non-negativity holds. *)

open Comfort
module Stage = Jsinterp.Run.Stage

let stage_names rows = List.map (fun (n, _, _) -> n) rows
let sum_ns rows = List.fold_left (fun a (_, ns, _) -> a + ns) 0 rows

let pipeline_order = [ "generate"; "screen"; "sweep"; "vote"; "attr"; "reduce"; "fold" ]
let substage_order = [ "parse"; "compile"; "realm"; "exec" ]

(* Enable the process-wide profiler for [f], reset at entry, disable on
   the way out (the counters stay readable), and return [f]'s value with
   the measured wall clock. Tests in this binary share the Stage state,
   so hygiene here keeps the suites independent. *)
let profiled f =
  Stage.enabled := true;
  Stage.reset ();
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  Stage.enabled := false;
  (v, wall_ns)

let check_rows_shape label rows expected_names =
  Alcotest.(check (list string)) (label ^ ": names in campaign order")
    expected_names (stage_names rows);
  List.iter
    (fun (n, ns, bytes) ->
      Alcotest.(check bool) (Printf.sprintf "%s: %s ns >= 0" label n) true (ns >= 0);
      Alcotest.(check bool) (Printf.sprintf "%s: %s bytes >= 0" label n) true (bytes >= 0))
    rows

(* A disabled probe must record nothing even while campaigns run. *)
let disabled_records_nothing () =
  Stage.enabled := false;
  Stage.reset ();
  let _ = Campaign.run ~budget:30 ~jobs:1 (Campaign.comfort_fuzzer ~seed:5 ()) in
  Alcotest.(check int) "pipeline untouched" 0 (sum_ns (Stage.pipeline ()));
  Alcotest.(check int) "substages untouched" 0 (sum_ns (Stage.substages ()));
  let p, c, r, e = Stage.read () in
  Alcotest.(check (list int)) "read () all zero" [ 0; 0; 0; 0 ] [ p; c; r; e ]

(* jobs = 1, with reduction and periodic checkpoint saves: every stage of
   the pipeline is exercised, and the disjoint sum stays under wall. *)
let jobs1_sum_bounded_by_wall () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "comfort-test-profiler.ckpt"
  in
  let res, wall_ns =
    profiled (fun () ->
        Campaign.run ~budget:300 ~jobs:1 ~reduce:true ~checkpoint:(path, 100)
          (Campaign.comfort_fuzzer ~seed:11 ()))
  in
  if Sys.file_exists path then Sys.remove path;
  Alcotest.(check int) "budget honoured" 300 res.Campaign.cp_cases_run;
  let rows = Stage.pipeline () in
  check_rows_shape "jobs=1" rows pipeline_order;
  check_rows_shape "jobs=1 substages" (Stage.substages ()) substage_order;
  Alcotest.(check bool) "disjoint stage sum <= wall" true (sum_ns rows <= wall_ns);
  (* substages nest inside the sweep stage, so they are bounded too *)
  Alcotest.(check bool) "substage sum <= wall" true
    (sum_ns (Stage.substages ()) <= wall_ns);
  let pos name =
    match List.assoc_opt name (List.map (fun (n, ns, _) -> (n, ns)) rows) with
    | Some ns -> ns > 0
    | None -> false
  in
  Alcotest.(check bool) "generate recorded" true (pos "generate");
  Alcotest.(check bool) "screen recorded" true (pos "screen");
  Alcotest.(check bool) "sweep recorded" true (pos "sweep");
  Alcotest.(check bool) "vote recorded" true (pos "vote");
  (* Metrics.profile folds the same counters: accounted = pipeline sum,
     residual under the tentpole's 10%-of-wall ceiling (generous margin
     for a short, noisy test campaign: 50%) *)
  let p = Metrics.profile ~wall_ns in
  Alcotest.(check int) "profile accounted = stage sum" (sum_ns rows)
    p.Metrics.pr_accounted_ns;
  Alcotest.(check bool) "most of wall accounted" true
    (p.Metrics.pr_unaccounted_pct < 50.0);
  Alcotest.(check bool) "profile renders" true
    (String.length (Metrics.profile_to_string p) > 0)

(* Supervised/chaos campaigns route executions through the supervisor's
   retry/quarantine machinery; stage probes there must not double-count
   either. *)
let supervised_sum_bounded_by_wall () =
  let plan =
    match
      Supervisor.Faultplan.of_spec
        "seed=7;targets=Hermes|Rhino;crash=0.6;hang=0.2;flaky=0.3"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let _, wall_ns =
    profiled (fun () ->
        Campaign.run ~budget:60 ~jobs:1 ~faults:plan
          ~policy:Supervisor.default_policy
          (Campaign.comfort_fuzzer ~seed:23 ()))
  in
  let rows = Stage.pipeline () in
  check_rows_shape "supervised" rows pipeline_order;
  Alcotest.(check bool) "supervised stage sum <= wall" true
    (sum_ns rows <= wall_ns);
  Alcotest.(check bool) "supervised substage sum <= wall" true
    (sum_ns (Stage.substages ()) <= wall_ns)

(* jobs > 1: worker domains accumulate concurrently, so the sum measures
   CPU time and may exceed wall — but the rows stay well-formed and the
   work is still attributed (sweep dominates). *)
let jobs2_accumulates_cpu_time () =
  let _, _ =
    profiled (fun () ->
        Campaign.run ~budget:80 ~jobs:2 (Campaign.comfort_fuzzer ~seed:3 ()))
  in
  let rows = Stage.pipeline () in
  check_rows_shape "jobs=2" rows pipeline_order;
  Alcotest.(check bool) "sweep recorded under jobs=2" true
    (List.exists (fun (n, ns, _) -> n = "sweep" && ns > 0) rows)

let reset_clears () =
  (* the previous tests left counters populated *)
  Stage.reset ();
  Alcotest.(check int) "pipeline cleared" 0 (sum_ns (Stage.pipeline ()));
  Alcotest.(check int) "substages cleared" 0 (sum_ns (Stage.substages ()));
  let p, c, r, e = Stage.read () in
  Alcotest.(check (list int)) "read () cleared" [ 0; 0; 0; 0 ] [ p; c; r; e ]

let suite =
  [
    Alcotest.test_case "disabled probe records nothing" `Quick
      disabled_records_nothing;
    Alcotest.test_case "jobs=1 stage sum bounded by wall" `Slow
      jobs1_sum_bounded_by_wall;
    Alcotest.test_case "supervised stage sum bounded by wall" `Quick
      supervised_sum_bounded_by_wall;
    Alcotest.test_case "jobs=2 accumulates per-domain CPU time" `Quick
      jobs2_accumulates_cpu_time;
    Alcotest.test_case "reset clears all counters" `Quick reset_clears;
  ]
