(* Cross-cutting QCheck properties over the whole pipeline. *)


(* deterministic program source generator: LM samples keyed by seed *)
let gen_source =
  QCheck2.Gen.(
    map
      (fun seed ->
        let g = Comfort.Generator.create ~seed:(abs seed + 1) () in
        Comfort.Generator.sample_program g)
      int)

let interpreter_deterministic =
  QCheck2.Test.make ~count:60 ~name:"interpreter is deterministic" gen_source
    (fun src ->
      let r1 = Jsinterp.Run.run ~fuel:200_000 src in
      let r2 = Jsinterp.Run.run ~fuel:200_000 src in
      Comfort.Difftest.signature_of_result r1
      = Comfort.Difftest.signature_of_result r2
      && r1.Jsinterp.Run.r_fuel_used = r2.Jsinterp.Run.r_fuel_used)

let reference_never_fires =
  QCheck2.Test.make ~count:60 ~name:"reference engine fires no quirks"
    gen_source (fun src ->
      let r = Jsinterp.Run.run ~fuel:200_000 src in
      Jsinterp.Quirk.Set.is_empty r.Jsinterp.Run.r_fired)

let quirkless_testbeds_agree =
  (* ten engines that all carry zero bugs can never deviate from each other *)
  let clean_testbeds =
    List.map
      (fun e ->
        let cfg = Engines.Registry.latest e in
        {
          Engines.Engine.tb_config =
            { cfg with Engines.Registry.cfg_quirks = Jsinterp.Quirk.Set.empty };
          tb_mode = Engines.Engine.Normal;
        })
      Engines.Registry.all_engines
  in
  QCheck2.Test.make ~count:40 ~name:"quirk-free engines never deviate"
    gen_source (fun src ->
      let tc = Comfort.Testcase.make src in
      let report = Comfort.Difftest.run_case clean_testbeds tc in
      report.Comfort.Difftest.cr_deviations = [])

let datagen_mutants_parse =
  QCheck2.Test.make ~count:40 ~name:"datagen mutants always parse" gen_source
    (fun src ->
      let dg = Comfort.Datagen.create ~seed:5 () in
      List.for_all
        (fun (m : Comfort.Datagen.mutant) ->
          Jsparse.Parser.is_valid m.Comfort.Datagen.m_source)
        (Comfort.Datagen.mutants_of_program dg src))

let fuel_monotone =
  (* more fuel can only move a timeout towards completion, never the
     reverse; the final non-timeout signature is stable *)
  QCheck2.Test.make ~count:40 ~name:"fuel is monotone" gen_source (fun src ->
      let r_small = Jsinterp.Run.run ~fuel:20_000 src in
      let r_big = Jsinterp.Run.run ~fuel:2_000_000 src in
      match (r_small.Jsinterp.Run.r_status, r_big.Jsinterp.Run.r_status) with
      | Jsinterp.Run.Sts_timeout, _ -> true
      | s1, s2 -> s1 = s2)

let reducer_output_still_valid =
  QCheck2.Test.make ~count:25 ~name:"reducer preserves syntactic validity"
    gen_source (fun src ->
      if not (Jsparse.Parser.is_valid src) then true
      else
        (* reduce under a trivial predicate that accepts smaller parseable
           programs printing anything *)
        let reduced =
          Comfort.Reducer.reduce
            ~still_triggers:(fun s -> Jsparse.Parser.is_valid s)
            src
        in
        Jsparse.Parser.is_valid reduced
        && String.length reduced <= String.length src)

let printer_preserves_behavior =
  (* parse -> print -> parse -> run gives the same observable result *)
  QCheck2.Test.make ~count:60 ~name:"pretty-printing preserves behaviour"
    gen_source (fun src ->
      match Jsparse.Parser.parse_program src with
      | exception Jsparse.Parser.Syntax_error _ -> true
      | p ->
          let src2 = Jsast.Printer.program_to_string p in
          let r1 = Jsinterp.Run.run ~fuel:200_000 src in
          let r2 = Jsinterp.Run.run ~fuel:200_000 src2 in
          Comfort.Difftest.signature_of_result r1
          = Comfort.Difftest.signature_of_result r2)

(* --- Quirk.Bits ↔ Quirk.Set equivalence ---
   The execution-sharing layer does its per-testbed set algebra on the
   packed Bits form; these properties pin it to the balanced-tree Set
   semantics over the whole catalogue. *)

let gen_quirks =
  QCheck2.Gen.(
    map Jsinterp.Quirk.Set.of_list
      (list_size (0 -- 72) (oneofl Jsinterp.Quirk.all)))

let bits_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"Bits.of_set/to_set roundtrip" gen_quirks
    (fun s ->
      Jsinterp.Quirk.Set.equal
        (Jsinterp.Quirk.Bits.to_set (Jsinterp.Quirk.Bits.of_set s))
        s)

let bits_mem_agrees =
  QCheck2.Test.make ~count:200 ~name:"Bits.mem agrees with Set.mem" gen_quirks
    (fun s ->
      let b = Jsinterp.Quirk.Bits.of_set s in
      List.for_all
        (fun q -> Jsinterp.Quirk.Bits.mem q b = Jsinterp.Quirk.Set.mem q s)
        Jsinterp.Quirk.all)

let bits_algebra_agrees =
  QCheck2.Test.make ~count:200 ~name:"Bits algebra commutes with Set algebra"
    QCheck2.Gen.(pair gen_quirks gen_quirks)
    (fun (s1, s2) ->
      let module Q = Jsinterp.Quirk in
      let b1 = Q.Bits.of_set s1 and b2 = Q.Bits.of_set s2 in
      Q.Set.equal (Q.Bits.to_set (Q.Bits.union b1 b2)) (Q.Set.union s1 s2)
      && Q.Set.equal (Q.Bits.to_set (Q.Bits.inter b1 b2)) (Q.Set.inter s1 s2)
      && Q.Set.equal (Q.Bits.to_set (Q.Bits.diff b1 b2)) (Q.Set.diff s1 s2)
      && Q.Bits.subset b1 b2 = Q.Set.subset s1 s2
      && Q.Bits.equal b1 b2 = Q.Set.equal s1 s2
      && Q.Bits.is_empty b1 = Q.Set.is_empty s1
      && Q.Bits.cardinal b1 = Q.Set.cardinal s1)

let bits_point_ops_agree =
  QCheck2.Test.make ~count:200 ~name:"Bits.add/remove/singleton agree with Set"
    QCheck2.Gen.(pair gen_quirks (oneofl Jsinterp.Quirk.all))
    (fun (s, q) ->
      let module Q = Jsinterp.Quirk in
      let b = Q.Bits.of_set s in
      Q.Set.equal (Q.Bits.to_set (Q.Bits.add q b)) (Q.Set.add q s)
      && Q.Set.equal (Q.Bits.to_set (Q.Bits.remove q b)) (Q.Set.remove q s)
      && Q.Set.equal (Q.Bits.to_set (Q.Bits.singleton q)) (Q.Set.singleton q))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      interpreter_deterministic;
      reference_never_fires;
      quirkless_testbeds_agree;
      datagen_mutants_parse;
      fuel_monotone;
      reducer_output_still_valid;
      printer_preserves_behavior;
      bits_roundtrip;
      bits_mem_agrees;
      bits_algebra_agrees;
      bits_point_ops_agree;
    ]
