(* Static checkpoint-reachability analysis (DESIGN.md §11).

   The analysis is useful only while it stays sound (static ⊇ every
   dynamic touched set) and pays off only while it stays precise enough
   to fold and pre-partition anything. Coverage here:

   - soundness over a handwritten corpus plus a fuzzer batch, asserted
     per front end and via [Difftest.audit_reach_case] across all 102
     testbeds;
   - a precision floor: ordinary programs get a strict subset of the
     domain's top, while [eval] collapses to top;
   - the compiler's constant-folding of statically-unreachable
     consultation sites, including the [Deopt_to_tree] escape hatch that
     makes an unsound fold degrade to the tree-walker instead of to a
     wrong answer;
   - execution counts and reports byte-identical with the analysis on or
     off, at the [Exec] sweep, [run_case] and full-campaign layers, with
     the reach-seeded fast path actually engaging. *)

open Helpers
open Jsinterp
module Engine = Engines.Engine
module Reach = Analysis.Reach

(* quirk-rich §5.2-flavoured traffic, parse failures, strict-only
   behaviour, steering control flow — the same spread the sharing suite
   sweeps, plus sources aimed at the five compiled consultation sites *)
let corpus =
  [
    "print(1 + 1);";
    {|var s = "abc".charAt(-1);
if (s !== "") print([3,1,2].sort());
else print("no");|};
    {|var o = { a: 1 }; print(Object.keys(o));
print("anA".split(/^A/)); print((-634619).toFixed(2));
print([10,9,1].sort()); print("abc".charAt(-1) === "");|};
    {|var foo = function(num) { var p = num.toFixed(-2); print(p); };
foo(-634619);|};
    "for (var i = 0; i < 3; i++)";
    "function f(a, a) { return a; } print(f(1, 2));";
    (* unary negation reaching 0 consults the neg-zero codegen site *)
    "var z = 0; print(1 / -z);";
    (* named function expression rebinding consults the NFE site *)
    {|var f = function g() { g = 1; return typeof g; }; print(f());|};
    (* += string append in a loop consults the optimizer-drop site *)
    {|var s = ""; for (var i = 0; i < 200; i++) s += "x";
print(s.length);|};
    {|"use strict"; function f() { return this; } print(f() === undefined);|};
  ]

let sound_on_every_frontend () =
  (* static ⊇ dynamic touched, per parse group, under quirk sets drawn
     from real testbeds *)
  List.iter
    (fun src ->
      List.iter
        (fun (tb : Engine.testbed) ->
          let strict = tb.Engine.tb_mode = Engine.Strict in
          let quirks = tb.Engine.tb_config.Engines.Registry.cfg_quirks in
          let fe =
            Run.parse_frontend ~quirks ~strict
              ~parse_opts:(Engines.Registry.parse_opts_of_config tb.Engine.tb_config)
              src
          in
          let ex = Run.run_exec ~quirks ~strict ~frontend:fe src in
          Alcotest.(check bool)
            (Printf.sprintf "%s sound on %s" (Engine.testbed_id tb) src)
            true
            (Quirk.Set.subset ex.Run.ex_result.Run.r_touched
               (Run.reach_set fe)))
        Engine.all_testbeds)
    corpus

let audit_accepts_corpus () =
  (* the production audit: every testbed's direct execution checked
     against the static set, then the normal shared sweep *)
  List.iter
    (fun src ->
      ignore
        (Comfort.Difftest.audit_reach_case Engine.all_testbeds
           (Comfort.Testcase.make src)))
    corpus

let audit_accepts_fuzzer_batch () =
  let batch = (Comfort.Campaign.comfort_fuzzer ~seed:7 ()).Comfort.Campaign.fz_batch 15 in
  Alcotest.(check bool) "batch non-empty" true (List.length batch >= 15);
  List.iter
    (fun tc -> ignore (Comfort.Difftest.audit_reach_case Engine.all_testbeds tc))
    batch

let precision_floor () =
  (* the analysis must actually narrow: on ordinary programs the static
     set is a strict subset of top, never top itself *)
  let narrowed =
    List.filter
      (fun src ->
        let s = Reach.checkpoints_src src in
        (not (Reach.is_top s)) && Quirk.Set.cardinal s < Quirk.Set.cardinal Reach.top)
      corpus
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d corpus programs narrowed" (List.length narrowed)
       (List.length corpus))
    true
    (List.length narrowed >= 8);
  (* a trivial program's set is small in absolute terms too *)
  Alcotest.(check bool) "print(1+1) reaches < a quarter of the domain" true
    (Quirk.Set.cardinal (Reach.checkpoints_src "print(1 + 1);") * 4
    < Quirk.Set.cardinal Reach.top)

let dynamic_constructs_are_top () =
  Alcotest.(check bool) "eval is top" true
    (Reach.is_top (Reach.checkpoints_src "eval('print(1)');"));
  Alcotest.(check bool) "indirect eval is top" true
    (Reach.is_top (Reach.checkpoints_src "var e = eval; e('1');"))

let strict_widens () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (src ^ ": strict set widens the sloppy set") true
        (Quirk.Set.subset
           (Reach.checkpoints_src src)
           (Reach.checkpoints_src ~strict:true src)))
    corpus

let compiler_folds_unreachable_sites () =
  let prog s =
    match (Run.parse_frontend s).Run.fe_program with
    | Ok p -> p
    | Error _ -> Alcotest.fail ("corpus program failed to parse: " ^ s)
  in
  let p = prog "print(1);" in
  let none = Compile.compile p in
  Alcotest.(check bool) "slotted" true none.Compile.cp_slotted;
  Alcotest.(check int) "no reach set: nothing folded" 0 none.Compile.cp_folded;
  let all = Compile.compile ~reach:Reach.top p in
  Alcotest.(check int) "top reach set: nothing folded" 0 all.Compile.cp_folded;
  let empty = Compile.compile ~reach:Quirk.Set.empty p in
  Alcotest.(check int) "empty reach set: every inline site folded"
    (Quirk.Set.cardinal Compile.compiled_checkpoints)
    empty.Compile.cp_folded

let deopt_escape_hatch () =
  (* force an unsound fold by hand: compile with an empty reach set a
     program whose compiled path consults the neg-zero site, seed the
     front-end cache with it, and check the consultation deopts to the
     tree-walker and still produces the right answer *)
  let src = "var z = 0; print(1 / -z);" in
  let fe = Run.parse_frontend src in
  let p =
    match fe.Run.fe_program with Ok p -> p | Error _ -> Alcotest.fail "parse"
  in
  let poisoned = Compile.compile ~reach:Quirk.Set.empty p in
  Alcotest.(check bool) "poisoned compile is slotted" true
    poisoned.Compile.cp_slotted;
  (* key (strict=false, reach=true, generic): specialisation is forced off
     below so the run consults exactly this entry *)
  Hashtbl.replace fe.Run.fe_compiled (false, true, -1) poisoned;
  let r =
    Run.run ~resolve:true ~reach:true ~specialize:false ~frontend:fe src
  in
  Alcotest.(check string) "deopt falls back to the tree answer"
    "-Infinity\n" r.Run.r_output;
  (* and with the quirk installed, the deopted run still honours it *)
  let fe2 = Run.parse_frontend ~quirks:(quirks_of [ Quirk.Q_codegen_neg_zero_positive ]) src in
  let p2 =
    match fe2.Run.fe_program with Ok p -> p | Error _ -> Alcotest.fail "parse"
  in
  Hashtbl.replace fe2.Run.fe_compiled (false, true, -1)
    (Compile.compile ~reach:Quirk.Set.empty p2);
  let r2 =
    Run.run
      ~quirks:(quirks_of [ Quirk.Q_codegen_neg_zero_positive ])
      ~resolve:true ~reach:true ~specialize:false ~frontend:fe2 src
  in
  Alcotest.(check string) "quirk honoured through the deopt" "Infinity\n"
    r2.Run.r_output

let folding_preserves_results () =
  (* reach on vs off, field-wise, across testbed quirk sets: the folds a
     *sound* reach set licenses must be invisible *)
  List.iter
    (fun src ->
      List.iter
        (fun (tb : Engine.testbed) ->
          let strict = tb.Engine.tb_mode = Engine.Strict in
          let quirks = tb.Engine.tb_config.Engines.Registry.cfg_quirks in
          let on = Run.run ~quirks ~strict ~resolve:true ~reach:true src in
          let off = Run.run ~quirks ~strict ~resolve:true ~reach:false src in
          let id = Engine.testbed_id tb ^ " on " ^ src in
          Alcotest.(check string) (id ^ ": output") off.Run.r_output
            on.Run.r_output;
          Alcotest.(check string) (id ^ ": status")
            (Run.status_to_string off.Run.r_status)
            (Run.status_to_string on.Run.r_status);
          Alcotest.(check int) (id ^ ": fuel") off.Run.r_fuel_used
            on.Run.r_fuel_used;
          Alcotest.(check bool) (id ^ ": fired") true
            (Quirk.Set.equal off.Run.r_fired on.Run.r_fired);
          Alcotest.(check bool) (id ^ ": touched") true
            (Quirk.Set.equal off.Run.r_touched on.Run.r_touched))
        (Engine.latest_testbeds ()))
    corpus

let sweep_executes_identically () =
  (* the PR 3 fixpoint is already execution-optimal; the reach partition
     may only change the lookup path, never the execution count *)
  List.iter
    (fun src ->
      let sweep reach =
        let before = Run.run_count () in
        let ec = Engine.Exec.cache src in
        List.iter
          (fun tb -> ignore (Engine.Exec.run ~fuel:100_000 ~reach ec tb))
          Engine.all_testbeds;
        let executed, shared = Engine.Exec.stats ec in
        (executed, shared, Run.run_count () - before, Engine.Exec.seeded ec)
      in
      let ex_off, sh_off, runs_off, seeded_off = sweep false in
      let ex_on, sh_on, runs_on, seeded_on = sweep true in
      Alcotest.(check int) (src ^ ": same executions") ex_off ex_on;
      Alcotest.(check int) (src ^ ": same shares") sh_off sh_on;
      Alcotest.(check int) (src ^ ": same interpreter runs") runs_off runs_on;
      Alcotest.(check int) (src ^ ": analysis off never seeds") 0 seeded_off;
      Alcotest.(check bool) (src ^ ": seeded is a subset of shares") true
        (seeded_on <= sh_on))
    corpus;
  (* on quirk-rich traffic the fast path must actually engage *)
  let ec =
    Engine.Exec.cache
      {|print([10,9,1].sort()); print("abc".charAt(-1));
print((0.1).toFixed(1));|}
  in
  List.iter
    (fun tb -> ignore (Engine.Exec.run ~fuel:100_000 ~reach:true ec tb))
    Engine.all_testbeds;
  Alcotest.(check bool) "reach-seeded shares happen" true
    (Engine.Exec.seeded ec > 0)

let run_case_reach_invariant () =
  List.iter
    (fun src ->
      let tc = Comfort.Testcase.make src in
      let on =
        Comfort.Difftest.run_case ~share:true ~reach:true Engine.all_testbeds tc
      in
      let off =
        Comfort.Difftest.run_case ~share:true ~reach:false Engine.all_testbeds
          tc
      in
      Alcotest.(check bool) (src ^ ": reports equal") true
        (Comfort.Difftest.report_equal on off))
    corpus

let disc_key (d : Comfort.Campaign.discovery) =
  ( Engines.Registry.engine_name d.Comfort.Campaign.disc_engine,
    Quirk.to_string d.Comfort.Campaign.disc_quirk,
    d.Comfort.Campaign.disc_at,
    d.Comfort.Campaign.disc_behavior,
    d.Comfort.Campaign.disc_mode )

let campaign_reach_invariant () =
  (* reach on/off x share on/off x jobs: identical discoveries, timeline
     and filter counts — the acceptance bar in miniature *)
  let campaign ~reach ~share ~jobs =
    Comfort.Campaign.run ~budget:80 ~reach ~share ~jobs
      (Comfort.Campaign.comfort_fuzzer ~seed:23 ())
  in
  let base = campaign ~reach:false ~share:true ~jobs:1 in
  Alcotest.(check int) "analysis off never seeds" 0
    base.Comfort.Campaign.cp_reach_seeded;
  List.iter
    (fun (reach, share, jobs) ->
      let r = campaign ~reach ~share ~jobs in
      let tag = Printf.sprintf "reach=%b share=%b jobs=%d" reach share jobs in
      Alcotest.(check bool) (tag ^ ": same discoveries") true
        (List.map disc_key r.Comfort.Campaign.cp_discoveries
        = List.map disc_key base.Comfort.Campaign.cp_discoveries);
      Alcotest.(check bool) (tag ^ ": same timeline") true
        (r.Comfort.Campaign.cp_timeline = base.Comfort.Campaign.cp_timeline);
      Alcotest.(check int) (tag ^ ": same filtered repeats")
        base.Comfort.Campaign.cp_filtered_repeats
        r.Comfort.Campaign.cp_filtered_repeats;
      Alcotest.(check int) (tag ^ ": same unattributed")
        base.Comfort.Campaign.cp_unattributed
        r.Comfort.Campaign.cp_unattributed;
      if reach && share then
        Alcotest.(check bool) (tag ^ ": fast path engaged") true
          (r.Comfort.Campaign.cp_reach_seeded > 0))
    [ (true, true, 1); (true, true, 4); (true, false, 1); (false, false, 1) ]

let campaign_audit_reach_passes () =
  (* every 2nd case re-runs direct on every testbed and asserts the
     soundness contract; any violation raises Reach_unsound *)
  let r =
    Comfort.Campaign.run ~budget:40 ~reach:true ~share:true ~audit_reach:2
      ~jobs:2
      (Comfort.Campaign.comfort_fuzzer ~seed:29 ())
  in
  Alcotest.(check int) "campaign completed" 40 r.Comfort.Campaign.cp_cases_run

let suite =
  [
    case "static reach is sound on every front end" sound_on_every_frontend;
    case "audit_reach_case accepts the corpus" audit_accepts_corpus;
    case "audit_reach_case accepts a fuzzer batch" audit_accepts_fuzzer_batch;
    case "precision floor: ordinary programs narrow" precision_floor;
    case "eval collapses to top" dynamic_constructs_are_top;
    case "strict analysis widens the sloppy one" strict_widens;
    case "compiler folds statically-unreachable sites"
      compiler_folds_unreachable_sites;
    case "an unsound fold deopts to the tree" deopt_escape_hatch;
    case "folding preserves results field-wise" folding_preserves_results;
    case "sweeps execute identically with reach on/off"
      sweep_executes_identically;
    case "run_case reports are reach-invariant" run_case_reach_invariant;
    case "campaigns are reach-invariant" campaign_reach_invariant;
    case "campaign audit-reach mode passes" campaign_audit_reach_passes;
  ]
