(* Slot-resolved compile-to-closure interpreter core (DESIGN.md §9).

   The tentpole claim mirrors execution sharing's: selecting the
   compiled core must never change a single observable — status, output,
   fuel, fired/touched quirk sets, coverage — on any testbed, for any
   program, including every deopt path. Coverage here:

   - full-corpus differential parity on the conforming reference with
     coverage recording on;
   - [Difftest.run_case] reports over all 102 testbeds, resolve on vs
     off, byte-identical for the whole corpus;
   - per-testbed field-wise result parity (no sharing, no voting) for a
     corpus sample and for every deopt fixture;
   - the deopt ladder: static per-program deopt (eval mention, top-level
     delete-on-binding), static per-function deopt (delete on a binding,
     frozen-name mutation), and the dynamic computed-eval trap that
     re-runs tree-walked mid-campaign (the AST has no [with] statement,
     so the classic fourth trigger cannot occur);
   - realm snapshots: builtin mutations must not leak between compiled
     executions (the [Realm] copy is what makes the compiled core fast,
     so its isolation is part of this tentpole's soundness);
   - campaign-level invariance, the bench acceptance check in miniature. *)

open Helpers
open Jsinterp
module Engine = Engines.Engine

let parse src = Jsparse.Parser.parse_program src

(* Field-wise result equality; [Quirk.Set.t] needs its own equal and the
   coverage summary is a plain record. *)
let results_agree tag (tree : Run.result) (compiled : Run.result) =
  Alcotest.(check bool) (tag ^ ": parsed") tree.Run.r_parsed compiled.Run.r_parsed;
  Alcotest.(check (option string))
    (tag ^ ": parse error") tree.Run.r_parse_error compiled.Run.r_parse_error;
  Alcotest.(check string) (tag ^ ": status")
    (Run.status_to_string tree.Run.r_status)
    (Run.status_to_string compiled.Run.r_status);
  Alcotest.(check string) (tag ^ ": output") tree.Run.r_output compiled.Run.r_output;
  Alcotest.(check int) (tag ^ ": fuel") tree.Run.r_fuel_used compiled.Run.r_fuel_used;
  Alcotest.(check bool) (tag ^ ": fired") true
    (Quirk.Set.equal tree.Run.r_fired compiled.Run.r_fired);
  Alcotest.(check bool) (tag ^ ": touched") true
    (Quirk.Set.equal tree.Run.r_touched compiled.Run.r_touched);
  Alcotest.(check bool) (tag ^ ": coverage") true
    (tree.Run.r_coverage = compiled.Run.r_coverage)

(* --- corpus parity --- *)

let corpus_parity_reference () =
  List.iteri
    (fun i src ->
      let tree = Run.run ~coverage:true ~resolve:false src in
      let compiled = Run.run ~coverage:true ~resolve:true src in
      results_agree (Printf.sprintf "corpus[%d]" i) tree compiled)
    Lm.Js_corpus.programs

let corpus_run_case_resolve_invariant () =
  (* the differential report over all 102 testbeds — votes, deviations,
     fired sets — must be byte-identical with the compiled core on *)
  List.iteri
    (fun i src ->
      let tc = Comfort.Testcase.make src in
      let compiled =
        Comfort.Difftest.run_case ~resolve:true Engine.all_testbeds tc
      in
      let tree =
        Comfort.Difftest.run_case ~resolve:false Engine.all_testbeds tc
      in
      Alcotest.(check bool)
        (Printf.sprintf "corpus[%d]: reports equal" i)
        true
        (Comfort.Difftest.report_equal compiled tree))
    Lm.Js_corpus.programs

(* every 9th corpus program, field-checked on every individual testbed
   with sharing and voting out of the way *)
let corpus_sample_parity_all_testbeds () =
  let sample =
    List.filteri (fun i _ -> i mod 9 = 0) Lm.Js_corpus.programs
  in
  List.iteri
    (fun i src ->
      List.iter
        (fun tb ->
          let tag =
            Printf.sprintf "sample[%d] %s" i (Engine.testbed_id tb)
          in
          let tree = Engine.run ~resolve:false tb src in
          let compiled = Engine.run ~resolve:true tb src in
          results_agree tag tree compiled)
        Engine.all_testbeds)
    sample

(* --- the deopt ladder --- *)

(* Each fixture names the deopt mechanism it exercises. The AST has no
   [with] statement (the parser rejects it), so the classic fourth
   dynamic-scope trigger cannot arise. *)
let deopt_fixtures =
  [
    ( "direct eval introducing a var (program deopt)",
      {|eval("var hidden = 41;");
print(hidden + 1);|} );
    ( "eval mentioned but unreached (program deopt)",
      {|var f = function () { return eval("1 + 1"); };
print("never called: " + (typeof f));|} );
    ( "top-level delete on a binding (program deopt)",
      {|var gone = 1;
print(delete gone);
print(typeof gone);|} );
    ( "delete on a binding inside a function (function deopt)",
      {|var keep = 7;
function zap() { return delete keep; }
print(zap());
print(keep);|} );
    ( "named funcexpr frozen-name mutation (function deopt)",
      {|var f = function self() {
  self = "overwritten";
  return typeof self;
};
print(f());|} );
    ( "for-in over a frozen name (function deopt)",
      {|var f = function self() {
  for (self in { a: 1 }) { }
  return typeof self;
};
print(f());|} );
    ( "computed eval the static scan misses (dynamic trap)",
      {|var name = "ev" + "al";
this[name]("var sneaky = 5;");
print(sneaky);|} );
  ]

let deopt_fixtures_reach_parity () =
  List.iter
    (fun (tag, src) ->
      (* reference with coverage, plus a quirked testbed sweep: deopted
         and trap re-runs must stay bit-for-bit too *)
      let tree = Run.run ~coverage:true ~resolve:false src in
      let compiled = Run.run ~coverage:true ~resolve:true src in
      results_agree tag tree compiled;
      List.iter
        (fun tb ->
          let tree = Engine.run ~resolve:false tb src in
          let compiled = Engine.run ~resolve:true tb src in
          results_agree (tag ^ " @ " ^ Engine.testbed_id tb) tree compiled)
        Engine.all_testbeds)
    deopt_fixtures

let frozen_name_quirk_parity () =
  (* the frozen-name mutation deopt must preserve the quirk fork: on a
     conforming engine assignment is a silent no-op (sloppy) or throws
     (strict); with Q_named_funcexpr_binding_mutable it lands *)
  let src =
    {|var f = function self() { self = 1; return typeof self; };
print(f());|}
  in
  let quirks = quirks_of [ Quirk.Q_named_funcexpr_binding_mutable ] in
  List.iter
    (fun qs ->
      let tree = Run.run ~quirks:qs ~resolve:false src in
      let compiled = Run.run ~quirks:qs ~resolve:true src in
      results_agree
        (Printf.sprintf "frozen mutation, %d quirks" (Quirk.Set.cardinal qs))
        tree compiled)
    [ Quirk.Set.empty; quirks ];
  Alcotest.(check string) "quirk flips the binding" "number\n"
    (Run.run ~quirks ~resolve:true src).Run.r_output;
  Alcotest.(check string) "conforming keeps it frozen" "function\n"
    (Run.run ~resolve:true src).Run.r_output

(* --- static compile classification --- *)

let compile_classifies_programs () =
  let slotted src = (Compile.compile (parse src)).Compile.cp_slotted in
  let deopt_fns src = (Compile.compile (parse src)).Compile.cp_deopt_fns in
  Alcotest.(check bool) "plain program is slotted" true
    (slotted "var x = 1; print(x);");
  Alcotest.(check bool) "eval mention deopts the program" false
    (slotted "eval(\"1\");");
  Alcotest.(check bool) "member eval deopts the program" false
    (slotted "this[\"eval\"](\"1\");");
  Alcotest.(check bool) "top-level delete-ident deopts the program" false
    (slotted "var x = 1; delete x;");
  Alcotest.(check int) "plain functions stay compiled" 0
    (deopt_fns "function f() { return 1; } print(f());");
  Alcotest.(check int) "delete-on-binding deopts one function" 1
    (deopt_fns "var y = 1; function f() { return delete y; } print(f());");
  Alcotest.(check int) "frozen-name mutation deopts one function" 1
    (deopt_fns "var f = function self() { self = 1; }; f();")

let dynamic_trap_still_counts_one_execution () =
  (* the tree re-run after [Deopt_to_tree] replays the same program; it
     must not inflate the executions-per-case accounting that the
     sharing bench reports *)
  let src = {|var n = "ev" + "al"; this[n]("var v = 3;"); print(v);|} in
  let before = Run.run_count () in
  let r = Run.run ~resolve:true src in
  Alcotest.(check int) "one execution recorded" (before + 1) (Run.run_count ());
  Alcotest.(check string) "trap produced the eval effect" "3\n" r.Run.r_output

(* --- realm snapshot isolation --- *)

let realm_snapshots_are_isolated () =
  (* a compiled execution runs in a realm copied from the shared
     template; builtin mutations must die with the execution *)
  let vandal =
    {|String.prototype.charAt = function () { return "Z"; };
Array.prototype.extra = 1;
print("a".charAt(0));|}
  in
  let probe = {|print("a".charAt(0)); print([].extra);|} in
  Alcotest.(check string) "vandal sees its own mutation" "Z\n"
    (Run.run ~resolve:true vandal).Run.r_output;
  Alcotest.(check string) "vandal again, fresh realm" "Z\n"
    (Run.run ~resolve:true vandal).Run.r_output;
  Alcotest.(check string) "later execution is unaffected" "a\nundefined\n"
    (Run.run ~resolve:true probe).Run.r_output;
  (* and the snapshot realm itself is indistinguishable from a freshly
     installed one *)
  results_agree "probe parity"
    (Run.run ~coverage:true ~resolve:false probe)
    (Run.run ~coverage:true ~resolve:true probe)

(* --- campaign-level invariance --- *)

let disc_key (d : Comfort.Campaign.discovery) =
  ( Engines.Registry.engine_name d.Comfort.Campaign.disc_engine,
    Quirk.to_string d.Comfort.Campaign.disc_quirk,
    d.Comfort.Campaign.disc_at,
    d.Comfort.Campaign.disc_behavior,
    d.Comfort.Campaign.disc_mode )

let campaign_resolve_invariant () =
  (* (share x resolve) grid on one seed: same discoveries, timeline and
     filter counts everywhere — the bench's identical_results check in
     miniature *)
  let campaign ~share ~resolve =
    Comfort.Campaign.run ~budget:80 ~share ~resolve ~jobs:1
      (Comfort.Campaign.comfort_fuzzer ~seed:31 ())
  in
  let base = campaign ~share:false ~resolve:false in
  List.iter
    (fun (share, resolve) ->
      let r = campaign ~share ~resolve in
      let tag = Printf.sprintf "share=%b resolve=%b" share resolve in
      Alcotest.(check bool) (tag ^ ": same discoveries") true
        (List.map disc_key r.Comfort.Campaign.cp_discoveries
        = List.map disc_key base.Comfort.Campaign.cp_discoveries);
      Alcotest.(check bool) (tag ^ ": same timeline") true
        (r.Comfort.Campaign.cp_timeline = base.Comfort.Campaign.cp_timeline);
      Alcotest.(check int) (tag ^ ": same filtered repeats")
        base.Comfort.Campaign.cp_filtered_repeats
        r.Comfort.Campaign.cp_filtered_repeats)
    [ (false, true); (true, false); (true, true) ]

let audit_share_accepts_resolve () =
  (* the sharing cross-check must hold under the compiled core too *)
  List.iter
    (fun (_, src) ->
      let tc = Comfort.Testcase.make src in
      ignore
        (Comfort.Difftest.audit_case ~resolve:true Engine.all_testbeds tc))
    deopt_fixtures

let suite =
  [
    case "corpus: reference parity with coverage" corpus_parity_reference;
    case "corpus: run_case reports are resolve-invariant"
      corpus_run_case_resolve_invariant;
    case "corpus sample: per-testbed field parity"
      corpus_sample_parity_all_testbeds;
    case "deopt fixtures: parity on reference and all testbeds"
      deopt_fixtures_reach_parity;
    case "frozen-name mutation quirk forks identically"
      frozen_name_quirk_parity;
    case "compile classifies slotted/deopted programs"
      compile_classifies_programs;
    case "dynamic eval trap counts as one execution"
      dynamic_trap_still_counts_one_execution;
    case "realm snapshots are isolated" realm_snapshots_are_isolated;
    case "campaigns are resolve-invariant" campaign_resolve_invariant;
    case "audit mode passes with the compiled core" audit_share_accepts_resolve;
  ]
