(* Execution sharing (DESIGN.md §8).

   The tentpole claim is behavioural: collapsing the 102-testbed sweep
   into quirk-reachability equivalence classes must never change a single
   observable result. Coverage here:

   - the [Run.shares_class] fixpoint on a program where one quirk's
     firing steers control flow into a second quirk checkpoint — the
     exact situation where predicting reachability instead of observing
     it would be unsound;
   - [Engine.Exec] vs direct [Engine.run] over all 102 testbeds,
     field-wise, plus the executed/shared accounting and the >=4x
     execution reduction the bench records;
   - [Difftest.run_case] and full [Campaign.run]s with sharing on vs off
     at 1 and 4 jobs, byte-identical reports throughout;
   - the audit mode accepting a clean sample. *)

open Helpers
open Jsinterp
module Engine = Engines.Engine

(* charAt(-1) normally yields "", so the sort checkpoint below is only
   reached when Q_charat_negative_wraps fires and flips the branch *)
let steering_src =
  {|var s = "abc".charAt(-1);
if (s !== "") print([3,1,2].sort());
else print("no");|}

let fixpoint_splits_on_exposed_checkpoint () =
  (* representative without quirks: the charAt checkpoint is consulted,
     the sort checkpoint is unreachable *)
  let rep = Run.run_exec ~quirks:Quirk.Set.empty steering_src in
  Alcotest.(check bool) "charAt checkpoint touched" true
    (Quirk.Set.mem Quirk.Q_charat_negative_wraps
       (Lazy.force rep.Run.ex_touched));
  Alcotest.(check bool) "sort checkpoint not reached" false
    (Quirk.Set.mem Quirk.Q_array_sort_numeric_default
       (Lazy.force rep.Run.ex_touched));
  (* a config where the charAt quirk is present differs on a touched
     checkpoint: it must split into its own class *)
  Alcotest.(check bool) "charAt config splits" false
    (Run.shares_class
       ~quirks:(quirks_of [ Quirk.Q_charat_negative_wraps ])
       rep);
  (* a config differing only in the unreached sort quirk shares *)
  Alcotest.(check bool) "sort-only config shares" true
    (Run.shares_class
       ~quirks:(quirks_of [ Quirk.Q_array_sort_numeric_default ])
       rep);
  (* the split representative reaches the second checkpoint... *)
  let rep2 =
    Run.run_exec
      ~quirks:(quirks_of [ Quirk.Q_charat_negative_wraps ])
      steering_src
  in
  Alcotest.(check bool) "firing charAt exposes the sort checkpoint" true
    (Quirk.Set.mem Quirk.Q_array_sort_numeric_default
       (Lazy.force rep2.Run.ex_touched));
  (* ...so a config that also carries the sort quirk splits again, while
     one differing only in a still-unreached quirk shares *)
  Alcotest.(check bool) "charAt+sort splits from charAt" false
    (Run.shares_class
       ~quirks:
         (quirks_of
            [ Quirk.Q_charat_negative_wraps; Quirk.Q_array_sort_numeric_default ])
       rep2);
  Alcotest.(check bool) "charAt+unreached quirk shares" true
    (Run.shares_class
       ~quirks:
         (quirks_of
            [ Quirk.Q_charat_negative_wraps; Quirk.Q_tofixed_no_rangeerror ])
       rep2)

let shared_result_equals_direct_result () =
  (* a member inheriting [rep2]'s execution must get exactly the result a
     direct run under its own quirk set produces *)
  let quirks =
    quirks_of [ Quirk.Q_charat_negative_wraps; Quirk.Q_tofixed_no_rangeerror ]
  in
  let fe = Run.parse_frontend ~quirks steering_src in
  let rep2 =
    Run.run_exec
      ~quirks:(quirks_of [ Quirk.Q_charat_negative_wraps ])
      ~frontend:fe steering_src
  in
  let shared = Run.share ~frontend:fe ~quirks rep2 in
  let direct = Run.run ~quirks steering_src in
  Alcotest.(check string) "output" direct.Run.r_output shared.Run.r_output;
  Alcotest.(check string) "status"
    (Run.status_to_string direct.Run.r_status)
    (Run.status_to_string shared.Run.r_status);
  Alcotest.(check int) "fuel" direct.Run.r_fuel_used shared.Run.r_fuel_used;
  Alcotest.(check bool) "fired" true
    (Quirk.Set.equal direct.Run.r_fired shared.Run.r_fired);
  Alcotest.(check bool) "touched" true
    (Quirk.Set.equal direct.Run.r_touched shared.Run.r_touched)

let run_count_counts_real_executions () =
  let before = Run.run_count () in
  ignore (Run.run "print(1);");
  Alcotest.(check int) "a direct run is one execution" (before + 1)
    (Run.run_count ());
  (* parse failures never reach the interpreter *)
  ignore (Run.run "var = ;");
  Alcotest.(check int) "a parse failure is no execution" (before + 1)
    (Run.run_count ())

(* the §5.2-flavoured sources the sweep-level checks run: plain code, the
   steering program above, quirk-rich builtin traffic, a thrown error, a
   parse-stage quirk trigger, and strict-only behaviour *)
let sweep_sources =
  [
    "print(1 + 1);";
    steering_src;
    {|var o = { a: 1 }; print(Object.keys(o));
print("anA".split(/^A/)); print((-634619).toFixed(2));
print([10,9,1].sort()); print("abc".charAt(-1) === "");|};
    {|var foo = function(num) { var p = num.toFixed(-2); print(p); };
foo(-634619);|};
    "for (var i = 0; i < 3; i++)";
    "function f(a, a) { return a; } print(f(1, 2));";
  ]

let exec_cache_equals_direct_sweep () =
  List.iter
    (fun src ->
      let ec = Engine.Exec.cache src in
      List.iter
        (fun (tb : Engine.testbed) ->
          let direct = Engine.run ~fuel:100_000 tb src in
          let shared = Engine.Exec.run ~fuel:100_000 ec tb in
          let id = Engine.testbed_id tb in
          Alcotest.(check bool) (id ^ " parsed") direct.Run.r_parsed
            shared.Run.r_parsed;
          Alcotest.(check (option string)) (id ^ " parse error")
            direct.Run.r_parse_error shared.Run.r_parse_error;
          Alcotest.(check string) (id ^ " status")
            (Run.status_to_string direct.Run.r_status)
            (Run.status_to_string shared.Run.r_status);
          Alcotest.(check string) (id ^ " output") direct.Run.r_output
            shared.Run.r_output;
          Alcotest.(check int) (id ^ " fuel") direct.Run.r_fuel_used
            shared.Run.r_fuel_used;
          Alcotest.(check bool) (id ^ " fired") true
            (Quirk.Set.equal direct.Run.r_fired shared.Run.r_fired);
          Alcotest.(check bool) (id ^ " touched") true
            (Quirk.Set.equal direct.Run.r_touched shared.Run.r_touched))
        Engine.all_testbeds;
      (* the reference engine joins the same cache *)
      let ref_direct = Engine.run_reference ~fuel:100_000 src in
      let ref_shared = Engine.Exec.run_reference ~fuel:100_000 ec in
      Alcotest.(check string) "reference output" ref_direct.Run.r_output
        ref_shared.Run.r_output)
    sweep_sources

let exec_cache_collapses_the_sweep () =
  (* the acceptance bar: across a full 102-testbed sweep, at least 4x
     fewer interpreter executions than testbeds that ran *)
  List.iter
    (fun src ->
      let ec = Engine.Exec.cache src in
      let ran =
        List.length
          (List.filter
             (fun (tb : Engine.testbed) ->
               ignore (Engine.Exec.run ~fuel:100_000 ec tb);
               true)
             Engine.all_testbeds)
      in
      let executed, shared = Engine.Exec.stats ec in
      Alcotest.(check int) (src ^ ": every run accounted") ran
        (executed + shared);
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d executions for %d testbeds (>=4x)" src
           executed ran)
        true
        (executed * 4 <= ran))
    [ "print(1 + 1);"; steering_src;
      {|print([3,1,2].sort()); print("x".charAt(-1));|} ]

let run_case_share_equals_direct () =
  List.iter
    (fun src ->
      let tc = Comfort.Testcase.make src in
      let shared =
        Comfort.Difftest.run_case ~share:true Engine.all_testbeds tc
      in
      let direct =
        Comfort.Difftest.run_case ~share:false Engine.all_testbeds tc
      in
      Alcotest.(check bool) (src ^ ": reports equal") true
        (Comfort.Difftest.report_equal shared direct))
    sweep_sources

let audit_accepts_equal_paths () =
  List.iter
    (fun src ->
      let tc = Comfort.Testcase.make src in
      ignore (Comfort.Difftest.audit_case Engine.all_testbeds tc))
    sweep_sources

let disc_key (d : Comfort.Campaign.discovery) =
  ( Engines.Registry.engine_name d.Comfort.Campaign.disc_engine,
    Quirk.to_string d.Comfort.Campaign.disc_quirk,
    d.Comfort.Campaign.disc_at,
    d.Comfort.Campaign.disc_behavior,
    d.Comfort.Campaign.disc_mode )

let campaign_share_invariant () =
  (* sharing on/off x jobs 1/4: same discoveries, timeline and filter
     counts everywhere — the bench's acceptance check in miniature *)
  let campaign ~share ~jobs =
    Comfort.Campaign.run ~budget:100 ~share ~jobs
      (Comfort.Campaign.comfort_fuzzer ~seed:23 ())
  in
  let base = campaign ~share:false ~jobs:1 in
  List.iter
    (fun (share, jobs) ->
      let r = campaign ~share ~jobs in
      let tag = Printf.sprintf "share=%b jobs=%d" share jobs in
      Alcotest.(check bool) (tag ^ ": same discoveries") true
        (List.map disc_key r.Comfort.Campaign.cp_discoveries
        = List.map disc_key base.Comfort.Campaign.cp_discoveries);
      Alcotest.(check bool) (tag ^ ": same timeline") true
        (r.Comfort.Campaign.cp_timeline = base.Comfort.Campaign.cp_timeline);
      Alcotest.(check int) (tag ^ ": same filtered repeats")
        base.Comfort.Campaign.cp_filtered_repeats
        r.Comfort.Campaign.cp_filtered_repeats;
      Alcotest.(check int) (tag ^ ": same unattributed")
        base.Comfort.Campaign.cp_unattributed
        r.Comfort.Campaign.cp_unattributed)
    [ (false, 4); (true, 1); (true, 4) ]

let campaign_audit_mode_passes () =
  (* every 3rd case double-runs and cross-checks; any mismatch raises *)
  let r =
    Comfort.Campaign.run ~budget:60 ~share:true ~audit_share:3 ~jobs:2
      (Comfort.Campaign.comfort_fuzzer ~seed:29 ())
  in
  Alcotest.(check int) "campaign completed" 60 r.Comfort.Campaign.cp_cases_run

let reducer_share_equals_direct () =
  (* the reduction predicate must accept/reject the same candidates *)
  let src =
    {|var junk1 = 1;
var p = (-634619).toFixed(-2);
print(p);
var junk2 = 2;|}
  in
  let cfg =
    Option.get
      (Engines.Registry.find_config ~engine:Engines.Registry.Rhino
         ~version:"1.7.12")
  in
  let tb = { Engine.tb_config = cfg; tb_mode = Engine.Normal } in
  let target = Engine.run tb src in
  let reference = Engine.run_reference src in
  let tsig = Comfort.Difftest.signature_of_result target in
  let rsig = Comfort.Difftest.signature_of_result reference in
  Alcotest.(check bool) "fixture deviates" true (tsig <> rsig);
  let dev =
    {
      Comfort.Difftest.d_testbed = tb;
      d_kind = Comfort.Difftest.kind_of tsig rsig;
      d_expected = Comfort.Difftest.signature_to_string rsig;
      d_actual = Comfort.Difftest.signature_to_string tsig;
      d_behavior = Comfort.Difftest.behavior_label tsig rsig;
      d_fired = target.Run.r_fired;
    }
  in
  let reduce share =
    Comfort.Reducer.reduce
      ~still_triggers:(Comfort.Reducer.still_triggers_deviation ~share tb dev)
      src
  in
  Alcotest.(check string) "same reduction" (reduce false) (reduce true)

let suite =
  [
    case "fixpoint splits when a firing exposes a checkpoint"
      fixpoint_splits_on_exposed_checkpoint;
    case "shared result equals a direct run" shared_result_equals_direct_result;
    case "run_count counts real executions" run_count_counts_real_executions;
    case "Exec cache equals direct runs on all 102 testbeds"
      exec_cache_equals_direct_sweep;
    case "Exec cache collapses the sweep >=4x" exec_cache_collapses_the_sweep;
    case "run_case: share on/off reports equal" run_case_share_equals_direct;
    case "audit accepts equal paths" audit_accepts_equal_paths;
    case "campaigns are share- and jobs-invariant" campaign_share_invariant;
    case "campaign audit mode passes" campaign_audit_mode_passes;
    case "reducer predicate is share-invariant" reducer_share_equals_direct;
  ]
