(* The quirk-specialised fast path (PR 7): copy-on-write realms,
   per-cell compiled closures with baked-in checkpoint answers, and
   monomorphic inline caches at compiled property sites.

   The contract under test is the same as for sharing, resolving and
   reach: specialisation is *invisible in results*. Every run, sweep and
   campaign must produce field-for-field what the generic path produces;
   the only legitimate difference is speed. On top of that, the
   copy-on-write realm must leak nothing across executions — after any
   mutation-heavy sweep the domain's shared template has to audit
   pristine. *)

open Helpers
module Engine = Engines.Engine
module Run = Jsinterp.Run
module Realm = Jsinterp.Realm

(* Sources chosen to stress exactly the machinery specialisation adds:
   inline caches (hot property loops, prototype method loads, layout
   churn), the realm write barrier (template-object mutation: builtin
   prototypes, global builtins), and per-cell compilation on quirk-rich
   traffic. *)
let corpus =
  [
    (* hot own-property loads and stores: inline-cache traffic *)
    "var o = {a: 1, b: 2};\n\
     for (var i = 0; i < 50; i++) o.a = o.a + o.b;\n\
     print(o.a);";
    (* prototype method load through a user constructor *)
    "function C() {}\n\
     C.prototype.m = function () { return 40 + 2; };\n\
     var c = new C();\n\
     for (var i = 0; i < 20; i++) c.m();\n\
     print(c.m());";
    (* layout churn: delete and re-add must invalidate cached entries *)
    "var o = { p: 1 };\n\
     delete o.p;\n\
     o.p = 2;\n\
     for (var i = 0; i < 10; i++) o.p = o.p + 1;\n\
     print(o.p);";
    (* template mutation: builtin prototype gains a property (the realm
       write barrier must journal Object.prototype and roll it back) *)
    "Object.prototype.z = 7;\nvar o = {};\nprint(o.z);";
    (* template mutation: a global builtin object is extended *)
    "Math.extra = 1;\nprint(Math.extra + Math.floor(1.5));";
    (* frozen objects: silent rejection vs strict throw across modes *)
    "var f = {};\n\
     Object.defineProperty(f, 'k', { value: 1, writable: false });\n\
     try { f.k = 2; } catch (e) { print('threw'); }\n\
     print(f.k);";
    (* array element aliasing and length truncation *)
    "var a = [1, 2, 3];\na[0] = a[2];\na.length = 2;\nprint(a.join(','));";
    (* quirk-rich traffic: sort stability, charAt bounds, toFixed *)
    "print([10, 9, 1].sort());\n\
     print(\"abc\".charAt(-1));\n\
     print((0.1).toFixed(1));";
  ]

let check_result_equal id (a : Run.result) (b : Run.result) =
  Alcotest.(check bool) (id ^ ": parsed") a.Run.r_parsed b.Run.r_parsed;
  Alcotest.(check (option string))
    (id ^ ": parse error") a.Run.r_parse_error b.Run.r_parse_error;
  Alcotest.(check string) (id ^ ": status")
    (Run.status_to_string a.Run.r_status)
    (Run.status_to_string b.Run.r_status);
  Alcotest.(check string) (id ^ ": output") a.Run.r_output b.Run.r_output;
  Alcotest.(check int) (id ^ ": fuel") a.Run.r_fuel_used b.Run.r_fuel_used;
  Alcotest.(check bool) (id ^ ": fired") true
    (Jsinterp.Quirk.Set.equal a.Run.r_fired b.Run.r_fired);
  Alcotest.(check bool) (id ^ ": touched") true
    (Jsinterp.Quirk.Set.equal a.Run.r_touched b.Run.r_touched)

(* --- specialised runs equal generic runs, field for field --- *)

let specialized_equals_generic () =
  List.iter
    (fun src ->
      List.iter
        (fun (tb : Engine.testbed) ->
          let id = Engine.testbed_id tb ^ " on " ^ String.sub src 0 12 in
          let generic =
            Engine.run ~fuel:100_000 ~resolve:true ~specialize:false tb src
          in
          let fast =
            Engine.run ~fuel:100_000 ~resolve:true ~specialize:true tb src
          in
          check_result_equal id generic fast)
        Engine.all_testbeds)
    corpus

(* --- copy-on-write isolation: sweeps leave the template pristine --- *)

let cow_sweep_leaves_realm_pristine () =
  (* run every mutation-heavy source across the full testbed pool on the
     shared fast path, then audit the domain template structurally
     against a freshly built realm: any surviving write is a barrier
     gap, i.e. state leaking from one execution into the next *)
  List.iter
    (fun src ->
      let ec = Engine.Exec.cache src in
      List.iter
        (fun tb ->
          ignore (Engine.Exec.run ~fuel:100_000 ~specialize:true ec tb))
        Engine.all_testbeds;
      match Realm.check_pristine () with
      | Ok () -> ()
      | Error what ->
          Alcotest.failf "template not pristine after %S: %s" src what)
    corpus

let cow_sweep_matches_generic_sweep () =
  (* the same sweep with specialisation on and off, through separate
     caches, must agree result for result *)
  List.iter
    (fun src ->
      let ec_fast = Engine.Exec.cache src in
      let ec_slow = Engine.Exec.cache src in
      List.iter
        (fun tb ->
          let fast = Engine.Exec.run ~fuel:100_000 ~specialize:true ec_fast tb in
          let slow =
            Engine.Exec.run ~fuel:100_000 ~specialize:false ec_slow tb
          in
          check_result_equal (Engine.testbed_id tb) slow fast)
        Engine.all_testbeds)
    corpus

(* --- the machinery actually engages --- *)

let counters_engage () =
  (* deltas of the process-wide counters across targeted runs; the
     fuzzer's own corpus is array- and primitive-heavy, so these
     hand-written programs are the canary that the fast paths exist *)
  let spec0 = Jsinterp.Compile.specialized_count () in
  let ic0 = Jsinterp.Value.ic_count () in
  let cow0 = Jsinterp.Value.cow_count () in
  ignore
    (Run.run ~resolve:true ~specialize:true
       "var o = {a: 1, b: 2};\n\
        for (var i = 0; i < 50; i++) o.a = o.a + o.b;\n\
        print(o.a);");
  ignore
    (Run.run ~resolve:true ~specialize:true
       "Object.prototype.z = 7;\nvar o = {};\nprint(o.z);");
  Alcotest.(check bool) "per-cell compilations happened" true
    (Jsinterp.Compile.specialized_count () > spec0);
  Alcotest.(check bool) "inline caches hit on hot property traffic" true
    (Jsinterp.Value.ic_count () > ic0);
  Alcotest.(check bool) "write barrier journaled a template mutation" true
    (Jsinterp.Value.cow_count () > cow0);
  Alcotest.(check bool) "rollback restored the template" true
    (Realm.check_pristine () = Ok ())

(* --- the per-case audit passes on real traffic --- *)

let audit_specialize_passes () =
  List.iter
    (fun src ->
      let tc = Comfort.Testcase.make src in
      (* raises Specialize_mismatch on any divergence *)
      ignore
        (Comfort.Difftest.audit_specialize_case ~share:true ~resolve:true
           Engine.all_testbeds tc))
    corpus

(* --- campaign invariance --- *)

let disc_key (d : Comfort.Campaign.discovery) =
  ( Engines.Registry.engine_name d.Comfort.Campaign.disc_engine,
    Jsinterp.Quirk.to_string d.Comfort.Campaign.disc_quirk,
    d.Comfort.Campaign.disc_at,
    d.Comfort.Campaign.disc_behavior,
    Engine.mode_to_string d.Comfort.Campaign.disc_mode )

let campaign_specialize_invariant () =
  (* specialisation on/off x jobs: identical discoveries, timeline and
     filter counts — the acceptance bar in miniature *)
  let campaign ~specialize ~jobs =
    Comfort.Campaign.run ~budget:80 ~share:true ~resolve:true ~specialize
      ~jobs
      (Comfort.Campaign.comfort_fuzzer ~seed:29 ())
  in
  let base = campaign ~specialize:false ~jobs:1 in
  List.iter
    (fun (specialize, jobs) ->
      let r = campaign ~specialize ~jobs in
      let tag = Printf.sprintf "specialize=%b jobs=%d" specialize jobs in
      Alcotest.(check bool) (tag ^ ": same discoveries") true
        (List.map disc_key r.Comfort.Campaign.cp_discoveries
        = List.map disc_key base.Comfort.Campaign.cp_discoveries);
      Alcotest.(check bool) (tag ^ ": same timeline") true
        (r.Comfort.Campaign.cp_timeline = base.Comfort.Campaign.cp_timeline);
      Alcotest.(check int) (tag ^ ": same filtered repeats")
        base.Comfort.Campaign.cp_filtered_repeats
        r.Comfort.Campaign.cp_filtered_repeats;
      Alcotest.(check int) (tag ^ ": same unattributed")
        base.Comfort.Campaign.cp_unattributed
        r.Comfort.Campaign.cp_unattributed)
    [ (true, 1); (true, 4); (false, 4) ]

let campaign_audit_specialize_passes () =
  (* every 2nd case cross-checks the specialised report against the
     generic one in a live campaign; a mismatch raises *)
  let r =
    Comfort.Campaign.run ~budget:40 ~share:true ~resolve:true
      ~specialize:true ~audit_specialize:2 ~jobs:1
      (Comfort.Campaign.comfort_fuzzer ~seed:31 ())
  in
  Alcotest.(check int) "campaign completed its budget" 40
    r.Comfort.Campaign.cp_cases_run

let suite =
  [
    case "specialised runs equal generic runs" specialized_equals_generic;
    case "COW sweeps leave the realm pristine" cow_sweep_leaves_realm_pristine;
    case "COW sweeps match generic sweeps" cow_sweep_matches_generic_sweep;
    case "specialisation counters engage" counters_engage;
    case "per-case specialise audit passes" audit_specialize_passes;
    case "campaigns are specialisation-invariant"
      campaign_specialize_invariant;
    case "auditing campaign passes" campaign_audit_specialize_passes;
  ]
