(* Supervised execution: fault injection, retry, quarantine, checkpoint.

   The properties that matter, each covered directly:

   - fault plans are deterministic pure functions of (seed, testbed, case,
     attempt) and round-trip through their spec syntax;
   - [Supervisor.execute] retries transient faults with deterministic
     backoff, gives up on persistent ones, and injected faults can never
     surface as engine behaviour;
   - the driver quarantines testbeds after K consecutive faulted cases
     and an intervening success resets the counter;
   - the supervised executor records a poisoned item as failed-and-skipped
     instead of killing the fan-out, halts early on [stop], and shutdown
     is idempotent;
   - a chaos campaign completes, quarantines the persistent faulter,
     reports the degraded coverage, leaks zero injected faults into the
     discoveries, and is byte-identical at any job count;
   - a campaign halted at a checkpoint and resumed produces a result
     identical to the uninterrupted run's. *)

module Supervisor = Comfort.Supervisor
module Faultplan = Comfort.Supervisor.Faultplan
module Campaign = Comfort.Campaign
module Executor = Comfort.Executor

(* The library reads COMFORT_FAULTS when no explicit plan is passed; make
   sure ambient chaos-job configuration cannot leak into the baselines. *)
let () = Unix.putenv "COMFORT_FAULTS" ""

let plan_of_spec spec =
  match Faultplan.of_spec spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "spec %S rejected: %s" spec e

let contains haystack needle =
  let lh = String.lowercase_ascii haystack
  and ln = String.lowercase_ascii needle in
  let nh = String.length lh and nn = String.length ln in
  let rec scan i = i + nn <= nh && (String.sub lh i nn = ln || scan (i + 1)) in
  scan 0

(* --- fault plans --- *)

let plan_spec_round_trip () =
  let spec = "seed=9;targets=V8|Hermes;crash=0.1;hang=0.05;flaky=0.3;flaky_tries=2;slow=0.2" in
  let p = plan_of_spec spec in
  let p' = plan_of_spec (Faultplan.to_spec p) in
  Alcotest.(check string) "to_spec is a fixpoint" (Faultplan.to_spec p)
    (Faultplan.to_spec p');
  Alcotest.(check bool) "unknown key rejected" true
    (Result.is_error (Faultplan.of_spec "seed=1;crsh=0.5"));
  Alcotest.(check bool) "probability out of range rejected" true
    (Result.is_error (Faultplan.of_spec "crash=1.5"));
  Alcotest.(check bool) "malformed field rejected" true
    (Result.is_error (Faultplan.of_spec "seed"))

let plan_from_env () =
  Unix.putenv "COMFORT_FAULTS" "seed=3;crash=0.5";
  (match Faultplan.from_env () with
  | Some p ->
      Alcotest.(check string) "env plan parsed" "seed=3;crash=0.5"
        (Faultplan.to_spec p)
  | None -> Alcotest.fail "COMFORT_FAULTS ignored");
  Unix.putenv "COMFORT_FAULTS" "nonsense";
  Alcotest.check_raises "malformed env spec fails loudly"
    (Invalid_argument
       "COMFORT_FAULTS: malformed field \"nonsense\" (want key=value)")
    (fun () -> ignore (Faultplan.from_env ()));
  Unix.putenv "COMFORT_FAULTS" "";
  Alcotest.(check bool) "empty env means no plan" true
    (Faultplan.from_env () = None)

let plan_draw_is_deterministic () =
  let p = plan_of_spec "seed=9;crash=0.3;hang=0.1;flaky=0.2;slow=0.2" in
  let draw tb ck a = Faultplan.draw p ~testbed_id:tb ~case_key:ck ~attempt:a in
  (* pure: the same key always yields the same fault *)
  for ck = 0 to 40 do
    for a = 0 to 3 do
      Alcotest.(check bool) "same key, same draw" true
        (draw "v8-8.0[normal]" ck a = draw "v8-8.0[normal]" ck a)
    done
  done;
  (* non-degenerate: across keys the plan both faults and spares *)
  let faults =
    List.length
      (List.filter
         (fun ck -> draw "v8-8.0[normal]" ck 0 <> None)
         (List.init 200 (fun i -> i)))
  in
  Alcotest.(check bool) "some draws fault" true (faults > 0);
  Alcotest.(check bool) "some draws pass" true (faults < 200)

let plan_targets_filter () =
  let p = plan_of_spec "seed=1;targets=Hermes;crash=1.0" in
  Alcotest.(check bool) "targeted (case-insensitive substring)" true
    (Faultplan.targets p "hermes-0.7[strict]");
  Alcotest.(check bool) "untargeted" false (Faultplan.targets p "v8-8.0[normal]");
  Alcotest.(check bool) "untargeted testbeds never draw faults" true
    (List.for_all
       (fun ck ->
         Faultplan.draw p ~testbed_id:"v8-8.0[normal]" ~case_key:ck ~attempt:0
         = None)
       (List.init 50 (fun i -> i)))

(* --- supervised execution --- *)

let execute_retry_then_succeed () =
  (* flaky with certainty for 2 attempts: burns both retries, then runs *)
  let p = plan_of_spec "seed=5;flaky=1.0;flaky_tries=2" in
  match
    Supervisor.execute ~plan:p ~testbed_id:"tb" ~case_key:0 (fun () -> 42)
  with
  | Supervisor.Done (v, meta) ->
      Alcotest.(check int) "value" 42 v;
      Alcotest.(check int) "two failed attempts absorbed" 2
        meta.Supervisor.em_retries;
      (* deterministic backoff: base * 2^0 + base * 2^1 = 30 *)
      Alcotest.(check int) "backoff accounted" 30 meta.Supervisor.em_backoff
  | Supervisor.Faulted _ -> Alcotest.fail "transient fault should clear"
  | Supervisor.Skipped -> Alcotest.fail "nothing quarantined here"

let execute_gives_up_on_persistent_fault () =
  let p = plan_of_spec "seed=5;crash=1.0" in
  match
    Supervisor.execute ~plan:p ~testbed_id:"tb" ~case_key:0 (fun () -> 42)
  with
  | Supervisor.Faulted fr ->
      Alcotest.(check bool) "crash" true (fr.Supervisor.fr_kind = Supervisor.F_crash);
      Alcotest.(check int) "first try + default 2 retries" 3
        fr.Supervisor.fr_attempts;
      Alcotest.(check int) "trail records every attempt" 3
        (List.length fr.Supervisor.fr_trail);
      Alcotest.(check int) "backoff accounted" 30 fr.Supervisor.fr_backoff
  | _ -> Alcotest.fail "a certain crash must exhaust the budget"

let execute_retries_real_exceptions () =
  (* a real escaped exception is retried like an injected crash: a
     transient harness flake clears, a deterministic bug becomes F_exn *)
  let calls = ref 0 in
  (match
     Supervisor.execute ~testbed_id:"tb" ~case_key:0
       ~policy:Supervisor.default_policy (fun () ->
         incr calls;
         if !calls = 1 then failwith "transient flake" else 7)
   with
  | Supervisor.Done (7, meta) ->
      Alcotest.(check int) "one retry" 1 meta.Supervisor.em_retries
  | _ -> Alcotest.fail "flake should clear on retry");
  match
    Supervisor.execute ~testbed_id:"tb" ~case_key:0
      ~policy:Supervisor.default_policy (fun () -> failwith "always")
  with
  | Supervisor.Faulted fr -> (
      match fr.Supervisor.fr_kind with
      | Supervisor.F_exn _ -> ()
      | k ->
          Alcotest.failf "wrong kind %s" (Supervisor.fault_kind_to_string k))
  | _ -> Alcotest.fail "deterministic exception must fault"

let execute_slow_start_vs_watchdog () =
  let p = plan_of_spec "seed=5;slow=1.0;slow_max=50" in
  (* within the default 100-unit watchdog budget: merely slow *)
  (match
     Supervisor.execute ~plan:p ~testbed_id:"tb" ~case_key:0 (fun () -> 1)
   with
  | Supervisor.Done (1, meta) ->
      Alcotest.(check int) "slow start absorbed" 1 meta.Supervisor.em_slow
  | _ -> Alcotest.fail "slow start within budget should proceed");
  (* watchdog budget 0: indistinguishable from a hang, killed every try *)
  let strict = { Supervisor.default_policy with Supervisor.p_watchdog = 0 } in
  match
    Supervisor.execute ~plan:p ~policy:strict ~testbed_id:"tb" ~case_key:0
      (fun () -> 1)
  with
  | Supervisor.Faulted fr -> (
      match fr.Supervisor.fr_kind with
      | Supervisor.F_slow _ -> ()
      | k ->
          Alcotest.failf "wrong kind %s" (Supervisor.fault_kind_to_string k))
  | _ -> Alcotest.fail "slow start beyond the watchdog must be killed"

let injected_faults_never_return_values () =
  (* the carrier exception is caught by the supervisor, not the engine:
     a thunk that raises [Injected] can only fault, never produce *)
  match
    Supervisor.execute ~testbed_id:"tb" ~case_key:0
      ~policy:Supervisor.default_policy (fun () ->
        raise (Supervisor.Injected Supervisor.F_hang))
  with
  | Supervisor.Faulted fr ->
      Alcotest.(check bool) "hang preserved" true
        (fr.Supervisor.fr_kind = Supervisor.F_hang)
  | _ -> Alcotest.fail "injected fault leaked"

(* --- quarantine --- *)

let quarantine_after_consecutive_faults () =
  let sup = Supervisor.create () in  (* default threshold: 3 *)
  let fr =
    {
      Supervisor.fr_kind = Supervisor.F_crash;
      fr_attempts = 3;
      fr_trail = [ Supervisor.F_crash ];
      fr_backoff = 30;
    }
  in
  let fault ck = Supervisor.observe sup ~case_key:ck [ ("tb", Supervisor.Ob_faulted fr) ] in
  let ok ck = Supervisor.observe sup ~case_key:ck [ ("tb", Supervisor.Ob_ok Supervisor.ok_meta) ] in
  fault 1; fault 2;
  Alcotest.(check bool) "not yet" false (Supervisor.quarantined sup "tb");
  ok 3;  (* success resets the consecutive counter *)
  fault 4; fault 5;
  Alcotest.(check bool) "reset worked" false (Supervisor.quarantined sup "tb");
  fault 6;
  Alcotest.(check bool) "third consecutive fault trips" true
    (Supervisor.quarantined sup "tb");
  Alcotest.(check bool) "worker snapshot agrees" true
    (Supervisor.quarantined_now sup "tb");
  Alcotest.(check (list (pair string int))) "list records the tripping case"
    [ ("tb", 6) ]
    (Supervisor.quarantine_list sup);
  Alcotest.(check int) "faulted count" 5 (Supervisor.stats sup).Supervisor.st_faulted;
  (* freeze/thaw round-trips the whole driver state *)
  let sup' = Supervisor.thaw (Supervisor.freeze sup) in
  Alcotest.(check bool) "thawed quarantine" true (Supervisor.quarantined sup' "tb");
  Alcotest.(check bool) "thawed stats" true
    (Supervisor.stats sup' = Supervisor.stats sup)

(* --- the supervised executor --- *)

let executor_on_exn_marks_failed_and_skipped () =
  Executor.with_pool ~jobs:3 (fun pool ->
      let consumed = ref [] in
      let skipped = ref 0 in
      Executor.run_ordered pool
        ~on_exn:(fun _ _ _ -> incr skipped; -1)
        (fun x -> if x mod 3 = 0 then raise Exit else x * 10)
        (List.init 20 (fun i -> i))
        ~consume:(fun _ _ y -> consumed := y :: !consumed);
      Alcotest.(check int) "every item consumed" 20 (List.length !consumed);
      Alcotest.(check int) "poisoned items recorded" 7 !skipped;
      Alcotest.(check bool) "failed items carry the marker" true
        (List.for_all
           (fun y -> y = -1 || y mod 10 = 0)
           !consumed);
      (* the pool survived the poisoned items: run again on the same pool *)
      let n = ref 0 in
      Executor.run_ordered pool (fun x -> x) [ 1; 2; 3 ]
        ~consume:(fun _ _ _ -> incr n);
      Alcotest.(check int) "pool reusable" 3 !n)

let executor_stop_halts_early () =
  Executor.with_pool ~jobs:4 (fun pool ->
      let stop = ref false in
      let consumed = ref 0 in
      Executor.run_ordered pool ~stop:(fun () -> !stop)
        (fun x -> x)
        (List.init 100 (fun i -> i))
        ~consume:(fun i _ _ ->
          consumed := i + 1;
          if i = 9 then stop := true);
      Alcotest.(check int) "halted right after the stop signal" 10 !consumed)

let executor_shutdown_is_idempotent () =
  List.iter
    (fun jobs ->
      let pool = Executor.create ~jobs () in
      Executor.shutdown pool;
      Executor.shutdown pool;
      Executor.shutdown pool)
    [ 1; 2; 4 ];
  (* shutdown is also guaranteed when run_ordered raises *)
  let pool = Executor.create ~jobs:3 () in
  (try
     Executor.run_ordered pool
       (fun x -> if x = 5 then raise Exit else x)
       (List.init 10 (fun i -> i))
       ~consume:(fun _ _ _ -> ())
   with Exit -> ());
  Executor.shutdown pool;
  Executor.shutdown pool

(* --- chaos campaigns --- *)

let testbeds = lazy (Campaign.default_testbeds ())

let chaos_plan =
  (* crashes, hangs and flakes on 6 of the 20 testbeds; crash=1.0 means
     every attempt on a targeted testbed faults one way or another, so
     all six must retry, exhaust the budget, and end up quarantined after
     the default 3 consecutive faulted cases — while each mode group
     keeps 7 live testbeds, so the campaign itself completes *)
  lazy
    (plan_of_spec
       "seed=11;targets=Hermes|Rhino|Nashorn;crash=1.0;hang=0.3;flaky=0.4")

let chaos_targets = [ "hermes"; "rhino"; "nashorn" ]

let run_chaos ?(jobs = 1) ?checkpoint ?halt_after () =
  Campaign.run
    ~testbeds:(Lazy.force testbeds)
    ~budget:20 ~jobs
    ~faults:(Lazy.force chaos_plan)
    ?checkpoint ?halt_after
    (Campaign.comfort_fuzzer ~seed:23 ())

let disc_key (d : Campaign.discovery) =
  ( Engines.Registry.engine_name d.Campaign.disc_engine,
    Jsinterp.Quirk.to_string d.Campaign.disc_quirk,
    d.Campaign.disc_at,
    d.Campaign.disc_behavior,
    d.Campaign.disc_version,
    Engines.Engine.mode_to_string d.Campaign.disc_mode,
    d.Campaign.disc_case.Comfort.Testcase.tc_source )

(* Field-wise result comparison (test-case ids are allocation counters,
   so discoveries are compared through [disc_key]). *)
let check_results_equal label (a : Campaign.result) (b : Campaign.result) =
  Alcotest.(check int) (label ^ ": cases") a.Campaign.cp_cases_run b.Campaign.cp_cases_run;
  Alcotest.(check bool) (label ^ ": discoveries") true
    (List.map disc_key a.Campaign.cp_discoveries
    = List.map disc_key b.Campaign.cp_discoveries);
  Alcotest.(check bool) (label ^ ": timeline") true
    (a.Campaign.cp_timeline = b.Campaign.cp_timeline);
  Alcotest.(check int) (label ^ ": filtered") a.Campaign.cp_filtered_repeats
    b.Campaign.cp_filtered_repeats;
  Alcotest.(check int) (label ^ ": unattributed") a.Campaign.cp_unattributed
    b.Campaign.cp_unattributed;
  Alcotest.(check int) (label ^ ": screened out") a.Campaign.cp_screened_out
    b.Campaign.cp_screened_out;
  Alcotest.(check bool) (label ^ ": screen reasons") true
    (a.Campaign.cp_screen_reasons = b.Campaign.cp_screen_reasons);
  Alcotest.(check int) (label ^ ": repaired") a.Campaign.cp_repaired
    b.Campaign.cp_repaired;
  Alcotest.(check int) (label ^ ": skipped cases") a.Campaign.cp_skipped_cases
    b.Campaign.cp_skipped_cases;
  Alcotest.(check bool) (label ^ ": fault stats") true
    (a.Campaign.cp_faults = b.Campaign.cp_faults);
  Alcotest.(check bool) (label ^ ": quarantine") true
    (a.Campaign.cp_quarantined = b.Campaign.cp_quarantined);
  Alcotest.(check bool) (label ^ ": aborted") true
    (a.Campaign.cp_aborted = b.Campaign.cp_aborted)

let chaos_campaign_quarantines_and_stays_clean () =
  let res = run_chaos () in
  let baseline =
    Campaign.run ~testbeds:(Lazy.force testbeds) ~budget:20
      (Campaign.comfort_fuzzer ~seed:23 ())
  in
  Alcotest.(check bool) "campaign completed" true
    (res.Campaign.cp_aborted = None);
  Alcotest.(check int) "all cases consumed" 20 res.Campaign.cp_cases_run;
  (* both Hermes testbeds fault persistently and are quarantined *)
  let quarantined = List.map fst res.Campaign.cp_quarantined in
  Alcotest.(check int) "all six targeted testbeds dropped" 6
    (List.length quarantined);
  Alcotest.(check bool) "only targeted testbeds were quarantined" true
    (List.for_all
       (fun id -> List.exists (contains id) chaos_targets)
       quarantined);
  let s = res.Campaign.cp_faults in
  Alcotest.(check bool) "faults were injected" true (s.Supervisor.st_faulted > 0);
  Alcotest.(check bool) "quarantine then skipped the faulter" true
    (s.Supervisor.st_skipped > 0);
  (* degraded coverage is quantified *)
  let av =
    Comfort.Metrics.availability
      ~testbeds:(List.length (Lazy.force testbeds))
      res
  in
  Alcotest.(check int) "six testbeds lost" 6 av.Comfort.Metrics.av_quarantined;
  Alcotest.(check bool) "availability below 1" true
    (av.Comfort.Metrics.av_ratio < 1.0);
  (* zero injected faults leak into the bug statistics: every discovery
     is a ground-truth (engine, quirk) pair, none is attributed to the
     faulted engine, and the discovery set is a subset of the no-fault
     baseline's *)
  Alcotest.(check bool) "discoveries are ground-truth bugs" true
    (List.for_all
       (fun (d : Campaign.discovery) ->
         List.mem
           (d.Campaign.disc_engine, d.Campaign.disc_quirk)
           Engines.Registry.all_bugs)
       res.Campaign.cp_discoveries);
  let base_keys = List.map disc_key baseline.Campaign.cp_discoveries in
  Alcotest.(check bool) "no fault-invented discoveries" true
    (List.for_all
       (fun d -> List.mem (disc_key d) base_keys)
       res.Campaign.cp_discoveries)

let chaos_campaign_is_jobs_invariant () =
  check_results_equal "jobs 1 vs 3" (run_chaos ~jobs:1 ()) (run_chaos ~jobs:3 ())

let all_testbeds_quarantined_aborts () =
  (* every testbed crashes on every attempt: by the time the quarantine
     threshold trips everywhere, no mode group can vote and the campaign
     winds down instead of burning the rest of the budget *)
  let res =
    Campaign.run
      ~testbeds:(Lazy.force testbeds)
      ~budget:20
      ~faults:(plan_of_spec "seed=2;crash=1.0")
      (Campaign.comfort_fuzzer ~seed:23 ())
  in
  Alcotest.(check bool) "aborted" true (res.Campaign.cp_aborted <> None);
  Alcotest.(check bool) "stopped early" true (res.Campaign.cp_cases_run < 20);
  Alcotest.(check bool) "no discoveries from injected faults" true
    (res.Campaign.cp_discoveries = []);
  Alcotest.(check int) "whole pool quarantined"
    (List.length (Lazy.force testbeds))
    (List.length res.Campaign.cp_quarantined)

let fuzzer_exhaustion_aborts () =
  let remaining = ref 5 in
  let fz =
    {
      Campaign.fz_name = "drained";
      fz_raw = None;
      fz_batch =
        (fun n ->
          if !remaining = 0 then failwith "out of test cases"
          else begin
            let take = min n !remaining in
            remaining := !remaining - take;
            List.init take (fun i ->
                Comfort.Testcase.make
                  (Printf.sprintf "print(%d + %d);" i (!remaining)))
          end);
    }
  in
  let res =
    Campaign.run ~testbeds:(Lazy.force testbeds) ~budget:10 fz
  in
  Alcotest.(check bool) "aborted with a reason" true
    (match res.Campaign.cp_aborted with
    | Some r -> contains r "fuzzer exhausted"
    | None -> false);
  Alcotest.(check int) "the gathered cases still ran" 5
    res.Campaign.cp_cases_run

(* --- checkpoint / resume --- *)

let ckpt_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let checkpoint_load_rejects_garbage () =
  let path = ckpt_path "comfort-test-garbage.ckpt" in
  let oc = open_out_bin path in
  output_string oc "not a checkpoint\njunk";
  close_out oc;
  Alcotest.(check bool) "bad header rejected" true
    (Result.is_error (Campaign.Checkpoint.load path));
  Sys.remove path;
  Alcotest.(check bool) "missing file rejected" true
    (Result.is_error (Campaign.Checkpoint.load path))

let checkpoint_load_rejects_torn_file () =
  (* a real checkpoint cut off mid-Marshal — what a disk-full or a
     crash during a non-atomic copy would leave behind. [load] must
     return its typed error, not let a Marshal exception escape. *)
  let path = ckpt_path "comfort-test-torn.ckpt" in
  (try ignore (run_chaos ~checkpoint:(path, 5) ~halt_after:7 ()) with
  | Campaign.Halted _ -> ());
  let full = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full * 2 / 3));
  close_out oc;
  (match Campaign.Checkpoint.load path with
  | Ok _ -> Alcotest.fail "torn checkpoint accepted"
  | Error e ->
      Alcotest.(check bool) "typed corruption diagnostic" true
        (contains e "truncated" || contains e "corrupt"));
  Sys.remove path

let halt_and_resume_matches_uninterrupted () =
  let path = ckpt_path "comfort-test-resume.ckpt" in
  let uninterrupted = run_chaos () in
  (* the same campaign, killed (deterministically) after 7 cases *)
  (match run_chaos ~checkpoint:(path, 5) ~halt_after:7 () with
  | _ -> Alcotest.fail "halt_after must raise"
  | exception Campaign.Halted { halted_at; halted_checkpoint } ->
      Alcotest.(check int) "halted where asked" 7 halted_at;
      Alcotest.(check (option string)) "checkpoint written" (Some path)
        halted_checkpoint);
  (match Campaign.Checkpoint.load path with
  | Error e -> Alcotest.failf "checkpoint unreadable: %s" e
  | Ok st ->
      Alcotest.(check int) "snapshot is at the halt point" 7
        (Campaign.Checkpoint.consumed st);
      Alcotest.(check int) "full case list stored" 20
        (Campaign.Checkpoint.total st);
      let resumed = Campaign.resume st in
      check_results_equal "resumed vs uninterrupted" uninterrupted resumed);
  (* resuming the finished campaign's final checkpoint is a no-op that
     reproduces the result *)
  (match run_chaos ~checkpoint:(path, 1000) () with
  | res -> (
      match Campaign.Checkpoint.load path with
      | Error e -> Alcotest.failf "final checkpoint unreadable: %s" e
      | Ok st ->
          Alcotest.(check int) "final checkpoint is complete" 20
            (Campaign.Checkpoint.consumed st);
          check_results_equal "re-finished" res (Campaign.resume st)));
  Sys.remove path

let resume_can_halt_again () =
  (* two kills in a row: 4 cases, then 11, then to the end — still equal *)
  let path = ckpt_path "comfort-test-double-resume.ckpt" in
  let uninterrupted = run_chaos () in
  (try ignore (run_chaos ~checkpoint:(path, 3) ~halt_after:4 ()) with
  | Campaign.Halted _ -> ());
  let st1 =
    match Campaign.Checkpoint.load path with
    | Ok st -> st
    | Error e -> Alcotest.failf "first checkpoint: %s" e
  in
  (try ignore (Campaign.resume ~checkpoint:(path, 3) ~halt_after:11 st1) with
  | Campaign.Halted _ -> ());
  let st2 =
    match Campaign.Checkpoint.load path with
    | Ok st -> st
    | Error e -> Alcotest.failf "second checkpoint: %s" e
  in
  Alcotest.(check int) "second snapshot is later" 11
    (Campaign.Checkpoint.consumed st2);
  check_results_equal "twice-killed vs uninterrupted" uninterrupted
    (Campaign.resume st2);
  Sys.remove path

let suite =
  [
    Helpers.case "fault plan: spec round-trip and validation" plan_spec_round_trip;
    Helpers.case "fault plan: COMFORT_FAULTS parsing" plan_from_env;
    Helpers.case "fault plan: draws are pure and non-degenerate" plan_draw_is_deterministic;
    Helpers.case "fault plan: targets filter" plan_targets_filter;
    Helpers.case "execute: retry then succeed, backoff accounted" execute_retry_then_succeed;
    Helpers.case "execute: persistent fault exhausts the budget" execute_gives_up_on_persistent_fault;
    Helpers.case "execute: real exceptions retried as faults" execute_retries_real_exceptions;
    Helpers.case "execute: slow start vs watchdog" execute_slow_start_vs_watchdog;
    Helpers.case "execute: injected faults cannot produce values" injected_faults_never_return_values;
    Helpers.case "quarantine: threshold, reset, freeze/thaw" quarantine_after_consecutive_faults;
    Helpers.case "executor: poisoned item is failed-and-skipped" executor_on_exn_marks_failed_and_skipped;
    Helpers.case "executor: stop halts the fan-out" executor_stop_halts_early;
    Helpers.case "executor: shutdown is idempotent" executor_shutdown_is_idempotent;
    Helpers.case "chaos campaign: quarantine, degradation, no leaks" chaos_campaign_quarantines_and_stays_clean;
    Helpers.case "chaos campaign: jobs-invariant" chaos_campaign_is_jobs_invariant;
    Helpers.case "chaos campaign: pool exhaustion aborts" all_testbeds_quarantined_aborts;
    Helpers.case "campaign: fuzzer exhaustion aborts gracefully" fuzzer_exhaustion_aborts;
    Helpers.case "checkpoint: garbage rejected" checkpoint_load_rejects_garbage;
    Helpers.case "checkpoint: torn file rejected" checkpoint_load_rejects_torn_file;
    Helpers.case "checkpoint: halt + resume = uninterrupted" halt_and_resume_matches_uninterrupted;
    Helpers.case "checkpoint: resume can halt and resume again" resume_can_halt_again;
  ]
